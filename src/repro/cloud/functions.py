"""Serverless function runtime (AWS Lambda substitute).

The pieces of Lambda behaviour the paper's models depend on are all
reproduced:

* vCPU allocation follows memory size: ``n_vcpu = memory_mb / 1769``
  (§7.1, citing AWS's documented scaling);
* execution time in a region is a *distribution*, not a constant (§7.1):
  durations are sampled from the function's work profile with lognormal
  noise and a per-region speed factor standing in for hardware/co-tenant
  variation (§2.3 Latency);
* cold starts: the first invocation on an idle (function, region) pair
  pays a provisioning delay; containers stay warm for a keep-alive
  window;
* Lambda-Insights-style telemetry (``cpu_total_time``) is emitted for
  every execution so the carbon model can compute utilisation (Eq. 7.3).

Handlers run *real Python code* instantly in wall-clock terms; virtual
time is charged from the sampled duration.  A handler receives a
:class:`FaasContext` whose ``end_s`` tells it when, in virtual time, its
effects (successor invocations) take place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.cloud.ledger import ExecutionRecord, MeteringLedger
from repro.cloud.simulator import SimulationEnvironment
from repro.common.errors import (
    DeploymentError,
    FunctionInvocationError,
    FunctionTimeoutError,
    RegionUnavailableError,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:
    from repro.cloud.faults import FaultInjector
    from repro.obs.trace import Tracer

#: Memory (MB) per vCPU on AWS Lambda (§7.1).
MEMORY_MB_PER_VCPU = 1769.0
#: How long an idle container stays warm, seconds.
CONTAINER_KEEPALIVE_S = 600.0
#: Cold-start provisioning delay: lognormal around ~0.45 s for container
#: images, the regime the paper deploys in (Docker images, §6.1).
COLD_START_MEDIAN_S = 0.45
COLD_START_SIGMA = 0.35


@dataclass(frozen=True)
class WorkProfile:
    """How a function's resource demand scales with its input.

    Attributes:
        base_seconds: Execution time at zero-size input.
        seconds_per_mb: Additional execution time per MiB of input.
        cpu_utilization: Average utilisation of the allotted vCPUs during
            execution, in (0, 1]; feeds the linear power model (Eq. 7.3).
        output_bytes_per_input_byte: Output payload size as a fraction of
            input size (apps can also override output size explicitly).
        output_base_bytes: Fixed component of the output size.
        noise_cv: Coefficient of variation of the lognormal duration
            noise.
    """

    base_seconds: float
    seconds_per_mb: float = 0.0
    cpu_utilization: float = 0.7
    output_bytes_per_input_byte: float = 1.0
    output_base_bytes: float = 1024.0
    noise_cv: float = 0.12

    def __post_init__(self) -> None:
        if self.base_seconds < 0 or self.seconds_per_mb < 0:
            raise ValueError("work profile durations must be non-negative")
        if not 0.0 < self.cpu_utilization <= 1.0:
            raise ValueError(
                f"cpu_utilization must be in (0, 1], got {self.cpu_utilization}"
            )

    def mean_duration(self, input_bytes: float) -> float:
        """Expected duration for an input of ``input_bytes``."""
        return self.base_seconds + self.seconds_per_mb * (input_bytes / (1024.0 * 1024.0))

    def output_size(self, input_bytes: float) -> float:
        """Deterministic output payload size for ``input_bytes`` input."""
        return self.output_base_bytes + self.output_bytes_per_input_byte * input_bytes


@dataclass(frozen=True)
class FunctionDeployment:
    """One function deployed to one region."""

    workflow: str
    function: str
    region: str
    handler: Callable[[Any, "FaasContext"], Any]
    memory_mb: int
    profile: WorkProfile
    image_reference: str = ""
    role_name: str = ""

    @property
    def qualified_name(self) -> str:
        return f"{self.workflow}.{self.function}"

    @property
    def n_vcpu(self) -> float:
        return self.memory_mb / MEMORY_MB_PER_VCPU


@dataclass
class FaasContext:
    """Execution context passed to handlers.

    ``start_s``/``duration_s`` are fixed before the handler runs; the
    handler should schedule any outward effects at ``end_s``.
    """

    env: SimulationEnvironment
    region: str
    workflow: str
    function: str
    node: str
    request_id: str
    start_s: float
    duration_s: float
    memory_mb: int
    cold_start: bool
    payload_bytes: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def n_vcpu(self) -> float:
        return self.memory_mb / MEMORY_MB_PER_VCPU


def _region_speed_factor(region: str) -> float:
    """Deterministic per-region execution-speed multiplier.

    Derived from the region name so every experiment sees the same
    hardware spread (±4 %) without configuration.
    """
    h = 0
    for ch in region:
        h = (h * 131 + ord(ch)) % 1_000_003
    return 1.0 + ((h % 81) - 40) / 1000.0  # in [0.96, 1.04]


class FunctionService:
    """Deploys and invokes functions across every region."""

    def __init__(
        self,
        env: SimulationEnvironment,
        ledger: MeteringLedger,
        faults: Optional["FaultInjector"] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._env = env
        self._ledger = ledger
        self._faults = faults
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._deployments: Dict[Tuple[str, str], FunctionDeployment] = {}
        # (qualified_name, region) -> time the warm container was last used
        self._warm_until: Dict[Tuple[str, str], float] = {}
        self._rng = env.rng.get("faas")
        self._region_down: Dict[str, bool] = {}
        # Per-region counters resolved once (invoke runs per message at
        # open-loop rates; registry lookups cost there).
        self._ctr_invocations: Dict[str, Any] = {}
        self._ctr_cold_starts: Dict[str, Any] = {}
        self._hist_duration = self._metrics.histogram("faas.duration_s")

    # -- deployment management ----------------------------------------------
    def deploy(self, deployment: FunctionDeployment) -> None:
        """Create (or replace) a function in its region.

        Raises :class:`~repro.common.errors.RegionUnavailableError` when
        the region is down — via the :meth:`set_region_available` hook or
        an injected ``region_outage`` — the failure path the Deployment
        Migrator must roll back from (§6.1).
        """
        if self._region_unavailable(deployment.region):
            raise RegionUnavailableError(
                f"region {deployment.region} is unavailable for new deployments"
            )
        key = (deployment.qualified_name, deployment.region)
        self._deployments[key] = deployment

    def remove(self, workflow: str, function: str, region: str) -> None:
        self._deployments.pop((f"{workflow}.{function}", region), None)
        self._warm_until.pop((f"{workflow}.{function}", region), None)

    def is_deployed(self, workflow: str, function: str, region: str) -> bool:
        return (f"{workflow}.{function}", region) in self._deployments

    def deployment(
        self, workflow: str, function: str, region: str
    ) -> FunctionDeployment:
        try:
            return self._deployments[(f"{workflow}.{function}", region)]
        except KeyError:
            raise DeploymentError(
                f"{workflow}.{function} is not deployed in {region}"
            ) from None

    def deployments_of(self, workflow: str) -> Tuple[FunctionDeployment, ...]:
        return tuple(
            d for d in self._deployments.values() if d.workflow == workflow
        )

    def set_region_available(self, region: str, available: bool) -> None:
        """Manual fault hook: mark a region as refusing new deployments.

        Time-windowed outages (which also refuse *invocations*) are
        declared through a :class:`~repro.cloud.faults.FaultPlan`.
        """
        self._region_down[region] = not available

    def _region_unavailable(self, region: str) -> bool:
        if self._region_down.get(region, False):
            return True
        if self._faults is not None and self._faults.region_down(region):
            self._faults.record("region_outage")
            return True
        return False

    # -- invocation -----------------------------------------------------------
    def invoke(
        self,
        workflow: str,
        function: str,
        region: str,
        body: Any,
        payload_bytes: float,
        node: str = "",
        request_id: str = "",
        handler_override: Optional[Callable[[Any, "FaasContext"], Any]] = None,
    ) -> FaasContext:
        """Invoke a deployed function now.

        Samples the cold start and execution duration, runs the handler
        (real code, zero wall time), and appends the execution record.
        Returns the context so callers can learn the virtual completion
        time.

        ``handler_override`` lets an orchestration layer wrap the
        deployed handler with per-invocation context (Caribou's function
        wrapper, §6.2) without redeploying.
        """
        deployment = self.deployment(workflow, function, region)
        if self._faults is not None:
            if self._faults.region_down(region):
                self._faults.record("region_outage")
                raise RegionUnavailableError(
                    f"region {region} is down; cannot invoke {workflow}.{function}"
                )
            fault = self._faults.invocation_fault(workflow, function, region)
            if fault is not None:
                self._metrics.counter("faas.fault_aborts", kind=fault).inc()
            if fault == "failure":
                raise FunctionInvocationError(
                    f"injected invocation failure for {workflow}.{function} "
                    f"in {region}"
                )
            if fault == "timeout":
                raise FunctionTimeoutError(
                    f"injected invocation timeout for {workflow}.{function} "
                    f"in {region}"
                )
        now = self._env.now()
        key = (deployment.qualified_name, region)

        warm_until = self._warm_until.get(key, -math.inf)
        cold = now > warm_until
        cold_delay = self._sample_cold_start() if cold else 0.0
        if cold and self._faults is not None:
            cold_delay *= self._faults.cold_start_multiplier(
                workflow, function, region
            )

        duration = self._sample_duration(deployment.profile, payload_bytes, region)
        start = now + cold_delay
        self._warm_until[key] = start + duration + CONTAINER_KEEPALIVE_S

        if self._tracer.enabled:
            self._tracer.record(
                "invocation",
                f"{workflow}.{function}",
                t0=start,
                t1=start + duration,
                workflow=workflow,
                request_id=request_id,
                node=node or function,
                region=region,
                cold_start=cold,
                memory_mb=deployment.memory_mb,
                payload_bytes=payload_bytes,
            )
        ctr = self._ctr_invocations.get(region)
        if ctr is None:
            ctr = self._ctr_invocations[region] = self._metrics.counter(
                "faas.invocations", region=region
            )
        ctr.inc()
        if cold:
            cctr = self._ctr_cold_starts.get(region)
            if cctr is None:
                cctr = self._ctr_cold_starts[region] = self._metrics.counter(
                    "faas.cold_starts", region=region
                )
            cctr.inc()
        self._hist_duration.observe(duration)

        ctx = FaasContext(
            env=self._env,
            region=region,
            workflow=workflow,
            function=function,
            node=node or function,
            request_id=request_id,
            start_s=start,
            duration_s=duration,
            memory_mb=deployment.memory_mb,
            cold_start=cold,
            payload_bytes=payload_bytes,
        )
        handler = handler_override if handler_override is not None else deployment.handler
        output = handler(body, ctx)
        output_bytes = self._output_size(deployment.profile, payload_bytes, output)

        self._ledger.record_execution(
            ExecutionRecord(
                workflow=workflow,
                node=ctx.node,
                function=function,
                region=region,
                request_id=request_id,
                start_s=start,
                duration_s=duration,
                memory_mb=deployment.memory_mb,
                n_vcpu=deployment.n_vcpu,
                cpu_total_time_s=duration
                * deployment.n_vcpu
                * deployment.profile.cpu_utilization,
                cold_start=cold,
                payload_bytes=payload_bytes,
                output_bytes=output_bytes,
            )
        )
        return ctx

    # -- sampling helpers -------------------------------------------------------
    def _sample_cold_start(self) -> float:
        return float(
            COLD_START_MEDIAN_S * self._rng.lognormal(0.0, COLD_START_SIGMA)
        )

    def _sample_duration(
        self, profile: WorkProfile, payload_bytes: float, region: str
    ) -> float:
        mean = profile.mean_duration(payload_bytes) * _region_speed_factor(region)
        if profile.noise_cv <= 0:
            return mean
        sigma = math.sqrt(math.log(1.0 + profile.noise_cv**2))
        noise = self._rng.lognormal(-sigma**2 / 2.0, sigma)
        return max(1e-4, mean * float(noise))

    @staticmethod
    def _output_size(profile: WorkProfile, payload_bytes: float, output: Any) -> float:
        """Output size: explicit (handler returned a sized object) or modelled."""
        size = getattr(output, "size_bytes", None)
        if size is not None:
            return float(size)
        return profile.output_size(payload_bytes)
