"""Shared infrastructure used by every other subpackage.

The simulation is fully deterministic: all time comes from
:class:`repro.common.clock.VirtualClock` and all randomness from seeded
streams handed out by :class:`repro.common.rng.RngRegistry`.
"""

from repro.common.clock import VirtualClock, SECONDS_PER_HOUR, SECONDS_PER_DAY
from repro.common.errors import (
    CaribouError,
    ConfigurationError,
    DeploymentError,
    RegionUnavailableError,
    SolverError,
    ToleranceViolatedError,
    WorkflowDefinitionError,
)
from repro.common.rng import RngRegistry
from repro.common.units import GB, KB, MB, gb, kb, mb

__all__ = [
    "VirtualClock",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "RngRegistry",
    "CaribouError",
    "ConfigurationError",
    "DeploymentError",
    "RegionUnavailableError",
    "SolverError",
    "ToleranceViolatedError",
    "WorkflowDefinitionError",
    "KB",
    "MB",
    "GB",
    "kb",
    "mb",
    "gb",
]
