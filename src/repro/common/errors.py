"""Exception hierarchy for the framework.

Every error raised by the reproduction derives from :class:`CaribouError`
so that callers can catch framework failures without swallowing Python
built-ins.
"""

from __future__ import annotations


class CaribouError(Exception):
    """Base class for all framework errors.

    ``retryable`` classifies the failure for the at-least-once delivery
    glue (§6.2): transient faults (the default) are worth redelivering
    with backoff, while deterministic errors — a malformed workflow will
    fail identically on every attempt — are dead-lettered immediately
    instead of re-running user handlers.
    """

    retryable = True


class WorkflowDefinitionError(CaribouError):
    """The developer-declared workflow is malformed.

    Raised when static analysis finds a cycle, multiple start nodes, an
    edge to an unregistered function, or a sync node misuse.
    """

    retryable = False


class ConfigurationError(CaribouError):
    """The deployment manifest (config/IAM policy) is invalid."""

    retryable = False


class DeploymentError(CaribouError):
    """A deployment or migration step failed."""


class RegionUnavailableError(DeploymentError):
    """The target region refused the deployment (capacity, outage)."""


class SolverError(CaribouError):
    """The deployment solver could not produce any feasible plan."""


class ToleranceViolatedError(SolverError):
    """Every candidate plan violated the developer's QoS tolerances."""


class KeyValueStoreError(CaribouError):
    """A distributed key-value store operation failed."""


class ConditionalCheckFailed(KeyValueStoreError):
    """A compare-and-set update found an unexpected current value."""


class MessageDeliveryError(CaribouError):
    """Pub/sub delivery exhausted its retries."""


class FaultInjectedError(CaribouError):
    """Base class for failures fired by the fault-injection layer."""


class FunctionInvocationError(FaultInjectedError):
    """An injected invocation failure: the function crashed before its
    effects occurred (retryable via pub/sub redelivery)."""


class FunctionTimeoutError(FaultInjectedError):
    """An injected invocation timeout: the function hit its execution
    deadline (retryable via pub/sub redelivery)."""


class NetworkPartitionError(FaultInjectedError):
    """A transfer was refused because its endpoints are partitioned."""
