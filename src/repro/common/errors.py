"""Exception hierarchy for the framework.

Every error raised by the reproduction derives from :class:`CaribouError`
so that callers can catch framework failures without swallowing Python
built-ins.
"""

from __future__ import annotations


class CaribouError(Exception):
    """Base class for all framework errors."""


class WorkflowDefinitionError(CaribouError):
    """The developer-declared workflow is malformed.

    Raised when static analysis finds a cycle, multiple start nodes, an
    edge to an unregistered function, or a sync node misuse.
    """


class ConfigurationError(CaribouError):
    """The deployment manifest (config/IAM policy) is invalid."""


class DeploymentError(CaribouError):
    """A deployment or migration step failed."""


class RegionUnavailableError(DeploymentError):
    """The target region refused the deployment (capacity, outage)."""


class SolverError(CaribouError):
    """The deployment solver could not produce any feasible plan."""


class ToleranceViolatedError(SolverError):
    """Every candidate plan violated the developer's QoS tolerances."""


class KeyValueStoreError(CaribouError):
    """A distributed key-value store operation failed."""


class ConditionalCheckFailed(KeyValueStoreError):
    """A compare-and-set update found an unexpected current value."""


class MessageDeliveryError(CaribouError):
    """Pub/sub delivery exhausted its retries."""
