"""Virtual time for the simulated cloud.

Every component in the reproduction reads time from a shared
:class:`VirtualClock` instead of the wall clock.  This keeps experiments
deterministic and lets a week of simulated operation (Fig. 11 of the
paper) run in milliseconds.

Time is represented as a float number of seconds since the *epoch* of the
experiment.  The default epoch corresponds to 2023-10-15 00:00 UTC, the
start of the carbon-data window the paper evaluates on (§9.1).
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, List

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: Start of the paper's evaluation window (2023-10-15 00:00 UTC).
DEFAULT_EPOCH = _dt.datetime(2023, 10, 15, tzinfo=_dt.timezone.utc)


class VirtualClock:
    """A monotonically advancing simulated clock.

    The clock only moves when :meth:`advance` or :meth:`advance_to` is
    called, typically by the discrete-event simulator.  Observers can be
    registered to be told whenever time moves, which the metrics layer
    uses to roll hourly carbon windows forward.
    """

    def __init__(self, epoch: _dt.datetime = DEFAULT_EPOCH, start: float = 0.0):
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self._epoch = epoch
        self._now = float(start)
        self._observers: List[Callable[[float], None]] = []

    @property
    def epoch(self) -> _dt.datetime:
        """The real-world datetime that simulated t=0 maps onto."""
        return self._epoch

    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self._now

    def datetime(self) -> _dt.datetime:
        """Current simulated time as a timezone-aware datetime."""
        return self._epoch + _dt.timedelta(seconds=self._now)

    def hour_of_day(self) -> int:
        """Hour of day (0-23) at the current simulated time."""
        return self.datetime().hour

    def hour_index(self) -> int:
        """Whole hours elapsed since the epoch (index into hourly series)."""
        return int(self._now // SECONDS_PER_HOUR)

    def day_index(self) -> int:
        """Whole days elapsed since the epoch."""
        return int(self._now // SECONDS_PER_DAY)

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}s")
        return self.advance_to(self._now + seconds)

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move time backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        for observer in self._observers:
            observer(self._now)
        return self._now

    def subscribe(self, observer: Callable[[float], None]) -> None:
        """Register ``observer(now)`` to be called after every advance."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[float], None]) -> None:
        self._observers.remove(observer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3f}, {self.datetime().isoformat()})"
