"""Unit constants and conversion helpers.

All sizes inside the simulator are plain ``int``/``float`` bytes; all
energies are kWh; all carbon quantities are grams of CO2-equivalent
(gCO2eq); all money is USD.  These helpers exist so that call sites read
naturally (``mb(2.4)`` instead of ``2.4 * 1024 * 1024``).
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def kb(n: float) -> float:
    """``n`` kibibytes in bytes."""
    return n * KB


def mb(n: float) -> float:
    """``n`` mebibytes in bytes."""
    return n * MB


def gb(n: float) -> float:
    """``n`` gibibytes in bytes."""
    return n * GB


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to GB (the unit the carbon/cost models use)."""
    return n_bytes / GB


def ms(n: float) -> float:
    """``n`` milliseconds in seconds."""
    return n / 1000.0


def hours(n: float) -> float:
    """``n`` hours in seconds."""
    return n * 3600.0


def watts_to_kw(n_watts: float) -> float:
    return n_watts / 1000.0
