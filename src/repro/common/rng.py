"""Deterministic random-number streams.

Experiments must be reproducible bit-for-bit, yet different components
(network jitter, function execution sampling, the HBSS solver, workload
traces) should draw from *independent* streams so that adding a draw in
one component does not perturb another.  :class:`RngRegistry` derives a
child :class:`numpy.random.Generator` per named component from a single
experiment seed using ``SeedSequence.spawn``-style keying.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    Public building block for *substream* derivation: components that
    need order-independent randomness (e.g. the solver's per-hour walks
    or the estimator's per-plan draws) hash a locally-drawn salt with a
    stable key instead of consuming a shared sequential stream, so the
    schedule in which substreams are used cannot perturb any of them.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


#: Backwards-compatible alias (pre-existing internal name).
_derive_seed = derive_seed


class RngRegistry:
    """Hands out named, independent, reproducible RNG streams."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws within a component are sequential.
        """
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                _derive_seed(self._seed, name)
            )
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (resets the stream)."""
        self._streams[name] = np.random.default_rng(_derive_seed(self._seed, name))
        return self._streams[name]

    def snapshot(self) -> Dict[str, dict]:
        """Capture every stream's bit-generator state.

        The returned mapping is independent of later draws; pass it to
        :meth:`restore` to rewind the registry (used by test fixtures to
        guarantee a failing chaos test cannot leak advanced RNG state
        into later tests sharing the registry).
        """
        return {
            name: copy.deepcopy(gen.bit_generator.state)
            for name, gen in self._streams.items()
        }

    def restore(self, state: Dict[str, dict]) -> None:
        """Rewind to a :meth:`snapshot`.

        Streams created after the snapshot are re-derived from the root
        seed on next :meth:`get`, exactly as if they had never existed.
        """
        for name in list(self._streams):
            if name not in state:
                del self._streams[name]
        for name, bg_state in state.items():
            self.get(name).bit_generator.state = copy.deepcopy(bg_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
