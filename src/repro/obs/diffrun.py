"""Run-to-run comparison: `caribou diff A B`.

Aligns two runs — JSON :class:`RunReport` documents and/or
``caribou.series/v1`` JSONL dumps, auto-detected per file — and emits a
markdown delta table: per metric (and, for series, per window), with
absolute and relative change and regression highlighting.  "Worse" is
direction-aware: carbon, cost, latency, failures, and burn metrics
regress *upward*; completions and throughput regress *downward*.

Everything is pure data-in/markdown-out so the comparator works on
artifacts from any two runs (different seeds, different strategies,
different commits) with no live simulation state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.timeseries import SERIES_SCHEMA, load_series_jsonl

#: Substrings marking metrics where a *decrease* is the improvement.
_LOWER_IS_BETTER = (
    "carbon", "cost", "latency", "duration", "fail", "timed_out", "expired",
    "dead_letter", "retr", "fallback", "burn", "violation", "service_time",
    "cold_start", "bytes", "p50", "p90", "p95", "p99", "mean", "max",
)

#: Substrings marking metrics where an *increase* is the improvement.
_HIGHER_IS_BETTER = ("completed", "throughput", "events_per_s", "compliance")

#: Relative change below which a delta is reported but not flagged.
REGRESSION_REL_THRESHOLD = 0.01


def regression_direction(metric: str) -> int:
    """+1 if the metric regresses when it increases, -1 when it
    decreases, 0 if direction is unknown (never flagged)."""
    lowered = metric.lower()
    for marker in _HIGHER_IS_BETTER:
        if marker in lowered:
            return -1
    for marker in _LOWER_IS_BETTER:
        if marker in lowered:
            return 1
    return 0


# ------------------------------------------------------------------ loading
def load_run_artifact(path: str) -> Tuple[str, Any]:
    """Load ``path`` as ``("report", doc)`` or ``("series", (points, w))``.

    Detection: a first line carrying the series schema header is a
    series dump; anything that parses as a JSON object is a report.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    first = text.splitlines()[0] if text.strip() else ""
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        header = None
    if isinstance(header, dict) and header.get("schema") == SERIES_SCHEMA:
        return "series", load_series_jsonl(text)
    doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: neither a RunReport nor a series dump")
    return "report", doc


# ------------------------------------------------------------------ flattening
def flatten_report(doc: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten a nested report into dotted-path -> numeric value."""
    flat: Dict[str, float] = {}
    for key in sorted(doc):
        value = doc[key]
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_report(value, path))
        elif isinstance(value, bool):
            flat[path] = float(value)
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def flatten_series(
    points: Sequence[Dict[str, Any]],
) -> Dict[Tuple[str, float], float]:
    """Series points -> ``(metric-or-metric.stat, window) -> value``."""
    flat: Dict[Tuple[str, float], float] = {}
    for p in points:
        window = float(p["window"])
        if p.get("type") == "histogram":
            for stat in ("count", "sum", "p50", "p95", "p99"):
                if stat in p:
                    flat[(f"{p['metric']}.{stat}", window)] = float(p[stat])
        else:
            flat[(p["metric"], window)] = float(p["value"])
    return flat


# ------------------------------------------------------------------ deltas
def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _delta_row(
    name: str, a: Optional[float], b: Optional[float]
) -> Tuple[List[str], bool]:
    """One table row; second element flags a regression."""
    if a is None:
        return [name, "—", _fmt(b), "—", "new"], False
    if b is None:
        return [name, _fmt(a), "—", "—", "gone"], False
    delta = b - a
    rel = delta / abs(a) if a else (0.0 if delta == 0 else float("inf"))
    direction = regression_direction(name)
    regressed = (
        direction != 0
        and delta * direction > 0
        and abs(rel) >= REGRESSION_REL_THRESHOLD
    )
    rel_s = "inf" if rel == float("inf") else f"{rel * 100:+.1f}%"
    note = "**regression**" if regressed else ""
    return [name, _fmt(a), _fmt(b), f"{_fmt(delta)} ({rel_s})", note], regressed


def _render_table(
    header: List[str], rows: Sequence[List[str]]
) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def diff_reports(
    a: Dict[str, Any],
    b: Dict[str, Any],
    label_a: str = "A",
    label_b: str = "B",
    only_changed: bool = True,
) -> str:
    """Markdown delta table for two flattened RunReports."""
    flat_a = flatten_report(a)
    flat_b = flatten_report(b)
    rows: List[List[str]] = []
    n_regressions = 0
    for name in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(name), flat_b.get(name)
        if only_changed and va == vb:
            continue
        row, regressed = _delta_row(name, va, vb)
        n_regressions += regressed
        rows.append(row)
    lines = [f"## Report diff: {label_a} vs {label_b}", ""]
    if not rows:
        lines.append("No numeric differences.")
        return "\n".join(lines) + "\n"
    lines.extend(_render_table(["metric", label_a, label_b, "Δ", ""], rows))
    lines.append("")
    lines.append(
        f"{len(rows)} metric(s) changed, {n_regressions} flagged as "
        "regressions."
    )
    return "\n".join(lines) + "\n"


def diff_series(
    a: Sequence[Dict[str, Any]],
    b: Sequence[Dict[str, Any]],
    label_a: str = "A",
    label_b: str = "B",
    only_changed: bool = True,
) -> str:
    """Markdown delta table for two series dumps, per metric per window."""
    flat_a = flatten_series(a)
    flat_b = flatten_series(b)
    rows: List[List[str]] = []
    n_regressions = 0
    for metric, window in sorted(
        set(flat_a) | set(flat_b), key=lambda k: (k[1], k[0])
    ):
        va = flat_a.get((metric, window))
        vb = flat_b.get((metric, window))
        if only_changed and va == vb:
            continue
        row, regressed = _delta_row(metric, va, vb)
        row.insert(1, _fmt(window))
        n_regressions += regressed
        rows.append(row)
    lines = [f"## Series diff: {label_a} vs {label_b}", ""]
    if not rows:
        lines.append("No per-window differences.")
        return "\n".join(lines) + "\n"
    lines.extend(
        _render_table(["metric", "window", label_a, label_b, "Δ", ""], rows)
    )
    lines.append("")
    lines.append(
        f"{len(rows)} point(s) changed, {n_regressions} flagged as "
        "regressions."
    )
    return "\n".join(lines) + "\n"


def diff_runs(path_a: str, path_b: str) -> str:
    """Diff two run artifacts (auto-detecting report vs series)."""
    kind_a, data_a = load_run_artifact(path_a)
    kind_b, data_b = load_run_artifact(path_b)
    if kind_a != kind_b:
        raise ValueError(
            f"cannot diff {kind_a} ({path_a}) against {kind_b} ({path_b})"
        )
    if kind_a == "series":
        return diff_series(
            data_a[0], data_b[0], label_a=path_a, label_b=path_b
        )
    return diff_reports(data_a, data_b, label_a=path_a, label_b=path_b)
