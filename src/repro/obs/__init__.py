"""Observability layer: structured tracing and a metrics registry.

The execution logs feeding the paper's models (§6.2 -> §7.1) are only
trustworthy if one can see *why* a run produced its numbers.  This
package provides that visibility without perturbing the simulation:

* :class:`~repro.obs.trace.Tracer` — structured, virtual-clock-stamped
  spans (request, invocation, publish, KV op, network transfer, solver
  iteration, migration) with parent/child links, exportable as
  deterministic JSONL;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms the cloud services and the Caribou runtime report into;
* :mod:`~repro.obs.render` — span-tree and summary renderers for the
  ``caribou run --trace`` CLI path and offline analysis.

Everything is inert by default: services hold the no-op
:data:`~repro.obs.trace.NULL_TRACER`, which never allocates spans,
never touches the RNG, and never schedules events — a run with tracing
disabled is byte-identical (ledger and all) to one built before this
package existed.
"""

from repro.obs.critical_path import (
    RequestPath,
    SyncGateReport,
    TraceAnalysis,
    analyze_trace,
    compute_critical_path,
    render_critical_path,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    get_profiler,
    profiled_phase,
    set_profiler,
)
from repro.obs.render import (
    load_jsonl,
    render_span_tree,
    render_trace_summary,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    RunReport,
    build_run_report,
)
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_KINDS,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "Profiler",
    "REPORT_SCHEMA",
    "RequestPath",
    "RunReport",
    "SPAN_KINDS",
    "Span",
    "SyncGateReport",
    "TraceAnalysis",
    "Tracer",
    "analyze_trace",
    "build_run_report",
    "compute_critical_path",
    "get_profiler",
    "load_jsonl",
    "profiled_phase",
    "render_critical_path",
    "render_span_tree",
    "render_trace_summary",
    "set_profiler",
]
