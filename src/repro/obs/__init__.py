"""Observability layer: structured tracing and a metrics registry.

The execution logs feeding the paper's models (§6.2 -> §7.1) are only
trustworthy if one can see *why* a run produced its numbers.  This
package provides that visibility without perturbing the simulation:

* :class:`~repro.obs.trace.Tracer` — structured, virtual-clock-stamped
  spans (request, invocation, publish, KV op, network transfer, solver
  iteration, migration) with parent/child links, exportable as
  deterministic JSONL;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  histograms the cloud services and the Caribou runtime report into;
* :mod:`~repro.obs.render` — span-tree and summary renderers for the
  ``caribou run --trace`` CLI path and offline analysis;
* :mod:`~repro.obs.timeseries` — windowed virtual-time sampling of the
  registry into per-window series, with Prometheus/JSONL exporters;
* :mod:`~repro.obs.slo` — declarative per-window SLOs with
  error-budget burn-rate alerting over those series;
* :mod:`~repro.obs.diffrun` / :mod:`~repro.obs.dash` — run-to-run
  delta tables and the offline sparkline dashboard.

Everything is inert by default: services hold the no-op
:data:`~repro.obs.trace.NULL_TRACER`, which never allocates spans,
never touches the RNG, and never schedules events — a run with tracing
disabled is byte-identical (ledger and all) to one built before this
package existed.
"""

from repro.obs.critical_path import (
    RequestPath,
    SyncGateReport,
    TraceAnalysis,
    analyze_trace,
    compute_critical_path,
    render_critical_path,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    get_profiler,
    profiled_phase,
    set_profiler,
)
from repro.obs.render import (
    load_jsonl,
    render_span_tree,
    render_trace_summary,
)
from repro.obs.dash import render_dashboard, sparkline
from repro.obs.diffrun import diff_reports, diff_runs, diff_series
from repro.obs.report import (
    REPORT_SCHEMA,
    RunReport,
    build_run_report,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SloResult,
    SloSpec,
    SloTracker,
    evaluate_slos,
    parse_slo,
)
from repro.obs.timeseries import (
    DEFAULT_WINDOW_S,
    SERIES_SCHEMA,
    TelemetryConfig,
    WindowedSampler,
    ledger_series,
    load_series_jsonl,
    merge_series,
    render_prometheus,
    series_to_jsonl,
)
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_KINDS,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "DEFAULT_WINDOW_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "Profiler",
    "REPORT_SCHEMA",
    "RequestPath",
    "RunReport",
    "SERIES_SCHEMA",
    "SPAN_KINDS",
    "SloResult",
    "SloSpec",
    "SloTracker",
    "Span",
    "SyncGateReport",
    "TelemetryConfig",
    "TraceAnalysis",
    "Tracer",
    "WindowedSampler",
    "analyze_trace",
    "build_run_report",
    "compute_critical_path",
    "diff_reports",
    "diff_runs",
    "diff_series",
    "evaluate_slos",
    "get_profiler",
    "ledger_series",
    "load_jsonl",
    "load_series_jsonl",
    "merge_series",
    "parse_slo",
    "profiled_phase",
    "render_critical_path",
    "render_dashboard",
    "render_prometheus",
    "render_span_tree",
    "render_trace_summary",
    "series_to_jsonl",
    "set_profiler",
    "sparkline",
]
