"""Declarative SLOs evaluated over windowed telemetry series.

An :class:`SloSpec` names a per-window objective — a latency quantile
ceiling, an error-rate ceiling, a carbon-per-request ceiling — and the
:class:`SloTracker` evaluates it against the per-window points produced
by :mod:`repro.obs.timeseries`.  Because every point is keyed to the
*virtual* clock, evaluating post-run over the finished series is
exactly equivalent to evaluating live at each flush: one code path,
deterministic output.

On top of per-window pass/fail the tracker keeps SRE-style error-budget
accounting: the budget is the tolerated fraction of bad windows
(``1 - target``), and the burn rate over a trailing window span is

    burn = (violating windows / windows in span) / budget

A burn rate of 1.0 spends the budget exactly; the classic fast/slow
alert pair (e.g. 14.4x over 1h + 6x over 6h, scaled here to window
counts) fires on the *rising edge* and is recorded as a structured
event dict, ready for ``RunReport`` embedding or JSONL export.

Spec strings (accepted by ``caribou run --slo``)::

    p95(executor.request_latency_s)<=0.8
    rate(executor.requests_expired/executor.requests)<=0.01
    ratio(ledger.carbon_g/ledger.requests)<=0.5

Label filters select series: ``p95(executor.request_latency_s{workflow=a})<=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import parse_key

#: Default multi-window burn-rate alert thresholds, (windows, burn).
#: Mirrors the SRE fast-burn/slow-burn pair: a short span catching
#: budget-torching incidents and a long span catching slow leaks.
DEFAULT_BURN_ALERTS: Tuple[Tuple[int, float], ...] = ((1, 14.4), (6, 6.0))


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective evaluated per window.

    Attributes:
        name: Stable identifier used in reports and alert events.
        kind: ``"quantile"`` (histogram percentile ceiling), ``"rate"``
            or ``"ratio"`` (both ``numerator/denominator <= threshold``;
            ``rate`` treats a missing numerator window as 0 violations,
            the idiom for error counters that stay silent when healthy).
        metric: Instrument name, optionally with ``{label=value}``
            filters; matched against series point keys.
        threshold: Upper bound for the windowed value.
        quantile: For ``kind="quantile"``: which precomputed window
            quantile to read (0.5/0.9/0.95/0.99).
        denominator: For rate/ratio kinds.
        target: Fraction of windows that must meet the objective
            (error budget is ``1 - target``).
    """

    name: str
    kind: str
    metric: str
    threshold: float
    quantile: float = 0.95
    denominator: str = ""
    target: float = 0.99

    @property
    def budget(self) -> float:
        return max(1.0 - self.target, 1e-9)


def parse_slo(text: str, target: float = 0.99) -> SloSpec:
    """Parse a ``caribou run --slo`` spec string into an :class:`SloSpec`.

    Grammar: ``<fn>(<metric>[/<denominator>])<=<threshold>[@<target>]``
    where ``fn`` is ``p50|p90|p95|p99|rate|ratio``.
    """
    spec = text.strip()
    if "@" in spec:
        spec, _, target_s = spec.rpartition("@")
        target = float(target_s)
    if "<=" not in spec:
        raise ValueError(f"SLO spec needs '<=': {text!r}")
    head, _, threshold_s = spec.partition("<=")
    threshold = float(threshold_s)
    head = head.strip()
    open_p = head.find("(")
    if open_p < 0 or not head.endswith(")"):
        raise ValueError(f"SLO spec needs 'fn(metric)': {text!r}")
    fn = head[:open_p].strip().lower()
    inner = head[open_p + 1 : -1].strip()
    if fn in ("rate", "ratio"):
        num, sep, den = inner.partition("/")
        if not sep:
            raise ValueError(f"{fn}() needs 'numerator/denominator': {text!r}")
        return SloSpec(
            name=spec.replace(" ", ""), kind=fn, metric=num.strip(),
            threshold=threshold, denominator=den.strip(), target=target,
        )
    if fn.startswith("p"):
        q = float(fn[1:]) / 100.0
        if not 0.0 < q < 1.0:
            raise ValueError(f"bad quantile in SLO spec: {text!r}")
        return SloSpec(
            name=spec.replace(" ", ""), kind="quantile", metric=inner,
            threshold=threshold, quantile=q, target=target,
        )
    raise ValueError(f"unknown SLO function {fn!r} in {text!r}")


def _metric_matches(selector: str, key: str) -> bool:
    """True if a point's metric key matches a spec selector.

    A bare name matches any label set of that name; a labelled selector
    requires every selector label to be present with the same value.
    """
    sel_name, sel_labels = parse_key(selector)
    name, labels = parse_key(key)
    if name != sel_name:
        return False
    return all(labels.get(k) == v for k, v in sel_labels.items())


def _qkey(q: float) -> str:
    return "p" + format(q * 100, "g")


@dataclass
class SloWindowResult:
    """Evaluation of one spec over one window."""

    window: float
    value: float
    ok: bool


@dataclass
class SloResult:
    """Evaluation of one spec over a whole series."""

    spec: SloSpec
    windows: List[SloWindowResult] = field(default_factory=list)
    alerts: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def n_violations(self) -> int:
        return sum(1 for w in self.windows if not w.ok)

    @property
    def compliance(self) -> float:
        if not self.windows:
            return 1.0
        return 1.0 - self.n_violations / len(self.windows)

    @property
    def budget_spent(self) -> float:
        """Fraction of the error budget consumed (>1 = blown)."""
        if not self.windows:
            return 0.0
        return (self.n_violations / len(self.windows)) / self.spec.budget

    @property
    def met(self) -> bool:
        return self.compliance >= self.spec.target

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "metric": self.spec.metric,
            "threshold": self.spec.threshold,
            "target": self.spec.target,
            "windows": self.n_windows,
            "violations": self.n_violations,
            "compliance": self.compliance,
            "budget_spent": self.budget_spent,
            "met": self.met,
            "alerts": self.alerts,
        }


class SloTracker:
    """Evaluates a set of :class:`SloSpec` over a windowed series."""

    def __init__(
        self,
        specs: Sequence[SloSpec],
        burn_alerts: Sequence[Tuple[int, float]] = DEFAULT_BURN_ALERTS,
    ):
        self.specs = list(specs)
        self.burn_alerts = tuple(burn_alerts)

    # -- per-window value extraction ------------------------------------------
    def _window_value(
        self, spec: SloSpec, window: float,
        by_window: Dict[float, List[Dict[str, Any]]],
    ) -> Optional[float]:
        points = by_window.get(window, [])
        if spec.kind == "quantile":
            qk = _qkey(spec.quantile)
            worst: Optional[float] = None
            for p in points:
                if p.get("type") == "histogram" and _metric_matches(
                    spec.metric, p["metric"]
                ):
                    v = p.get(qk)
                    if v is not None and (worst is None or v > worst):
                        worst = v
            return worst
        # rate / ratio: sum matching numerator and denominator values.
        num = 0.0
        den = 0.0
        saw_num = False
        saw_den = False
        for p in points:
            value = p.get("value")
            if value is None:
                value = p.get("count")
            if value is None:
                continue
            if _metric_matches(spec.metric, p["metric"]):
                num += value
                saw_num = True
            if _metric_matches(spec.denominator, p["metric"]):
                den += value
                saw_den = True
        if not saw_den or den == 0.0:
            return None
        if not saw_num:
            if spec.kind == "rate":
                num = 0.0  # quiet error counter == zero errors
            else:
                return None
        return num / den

    # -- evaluation -----------------------------------------------------------
    def evaluate(self, points: Sequence[Dict[str, Any]]) -> List[SloResult]:
        """Evaluate every spec over the series; deterministic output.

        Windows with no matching data are skipped (they neither spend
        nor restore budget).  Burn-rate alerts fire on the rising edge:
        one event per (spec, span) excursion above its threshold.
        """
        by_window: Dict[float, List[Dict[str, Any]]] = {}
        for p in points:
            by_window.setdefault(p["window"], []).append(p)
        windows = sorted(by_window)

        results: List[SloResult] = []
        for spec in self.specs:
            result = SloResult(spec=spec)
            for w in windows:
                value = self._window_value(spec, w, by_window)
                if value is None:
                    continue
                result.windows.append(
                    SloWindowResult(
                        window=w, value=value, ok=value <= spec.threshold
                    )
                )
            self._burn_alerts(result)
            results.append(result)
        return results

    def _burn_alerts(self, result: SloResult) -> None:
        flags = [0 if w.ok else 1 for w in result.windows]
        budget = result.spec.budget
        for span, threshold in self.burn_alerts:
            firing = False
            for i in range(len(flags)):
                lo = max(0, i + 1 - span)
                frac = sum(flags[lo : i + 1]) / (i + 1 - lo)
                burn = frac / budget
                if burn >= threshold and not firing:
                    firing = True
                    result.alerts.append(
                        {
                            "type": "slo_burn",
                            "slo": result.spec.name,
                            "window": result.windows[i].window,
                            "span_windows": span,
                            "burn_rate": burn,
                            "threshold": threshold,
                        }
                    )
                elif burn < threshold:
                    firing = False


def evaluate_slos(
    specs: Sequence[SloSpec], points: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """One-shot helper: evaluate ``specs`` and return report-ready dicts."""
    return [r.to_dict() for r in SloTracker(specs).evaluate(points)]


#: Objectives applied when ``--slo`` is passed without spec strings:
#: request p95 under a second, failure/timeout rate under 1%, and
#: carbon per request under half a gram (tuned to the quickstart scale).
DEFAULT_SLOS: Tuple[SloSpec, ...] = (
    parse_slo("p95(executor.request_latency_s)<=1.0"),
    parse_slo(
        "rate(executor.requests_finished{status=failed}/executor.requests)"
        "<=0.01"
    ),
    parse_slo(
        "rate(executor.requests_finished{status=timed_out}/executor.requests)"
        "<=0.01"
    ),
    parse_slo("ratio(ledger.carbon_g/ledger.requests)<=0.5"),
)
