"""Windowed virtual-time telemetry: per-window series over the registry.

End-of-run aggregates (one ``MetricsRegistry.snapshot()``, one
``RunReport``) cannot show carbon dropping *when* the migrator shifts a
workflow or a flash crowd blowing a latency SLO mid-run.  This module
samples every registry instrument into per-window points keyed by
``(metric, labels, window_start)`` on a configurable virtual-time window
(default 3600 s, matching the solver's hourly plan granularity):

* **counters** become per-window deltas;
* **gauges** become last-value-in-window samples;
* **histograms** become per-window bucket deltas plus count/sum and
  interpolated quantiles of the *window's* distribution.

Collection is driven by a simulator-scheduled flush event, so sampling
happens at exact virtual-time window boundaries and is bit-reproducible
across serial/thread/process solver backends and both event loops: the
virtual clock never advances during a solve, so every instrument delta
lands in the same window no matter how the wall-clock work was fanned
out.  A run without a sampler attached schedules nothing and is
byte-identical to today (the :data:`~repro.obs.trace.NULL_TRACER`
contract, extended to time series).

Post-run, :func:`ledger_series` turns the metering ledger into the same
point shape — per-window, per-region, per-workflow carbon/cost/traffic
priced under one transmission scenario — which is what figure-grade
per-hour emission timelines (GreenCourier-style) are plotted from.

Exporters: :func:`series_to_jsonl` (compact, sorted-key JSONL) and
:func:`render_prometheus` (Prometheus text exposition of a registry's
cumulative state), both byte-deterministic for same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, format_bound, parse_key

#: Default sampling window: one virtual hour, the solver's plan granularity.
DEFAULT_WINDOW_S = 3600.0

#: Schema identifier embedded in series JSONL headers (first line).
SERIES_SCHEMA = "caribou.series/v1"

#: Quantiles precomputed per histogram window (keys ``p50`` .. ``p99``).
WINDOW_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _qkey(q: float) -> str:
    return "p" + format(q * 100, "g")


def bucket_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Quantile of a *windowed* (delta) histogram.

    Same interpolation rule as :meth:`Histogram.quantile`, but a window
    delta has no min/max: the first bucket's lower bound is 0 and the
    overflow bucket collapses to the last finite bound (the classic
    Prometheus ``histogram_quantile`` convention).
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    for i, n in enumerate(counts):
        prev_seen = seen
        seen += n
        if seen >= target and n:
            if i >= len(bounds):  # overflow bucket
                return float(bounds[-1]) if bounds else 0.0
            lo = 0.0 if i == 0 else float(bounds[i - 1])
            hi = float(bounds[i])
            return lo + (hi - lo) * (target - prev_seen) / n
    return float(bounds[-1]) if bounds else 0.0


def _point_sort_key(point: Dict[str, Any]) -> Tuple[float, str]:
    return (point["window"], point["metric"])


class WindowedSampler:
    """Samples a :class:`MetricsRegistry` into per-window series points.

    Attach to a :class:`~repro.cloud.simulator.SimulationEnvironment`
    and the sampler drives one flush per window boundary through a
    :class:`~repro.cloud.simulator.RepeatingEvent` (grid-aligned to
    absolute multiples of ``window_s``).  Each flush emits the delta of
    every instrument since the previous flush; the repeating event
    parks itself when the queue drains, so telemetry never keeps
    ``run_until_idle`` alive on its own.  Call :meth:`close` after the
    run drains to capture the final partial window.

    Points are plain sorted-key dicts (see module docstring for the
    shapes); within a window they are emitted in sorted metric order,
    so two same-seed runs produce byte-identical series.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        window_s: float = DEFAULT_WINDOW_S,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.registry = registry
        self.window_s = float(window_s)
        self.points: List[Dict[str, Any]] = []
        self.windows_flushed = 0
        self._env = None
        self._repeating = None
        self._last_flush_t = 0.0
        self._last_counters: Dict[str, float] = {}
        self._last_gauges: Dict[str, float] = {}
        # key -> (count, total, bucket_counts tuple) at last flush
        self._last_hists: Dict[str, Tuple[int, float, Tuple[int, ...]]] = {}

    # -- wiring ---------------------------------------------------------------
    def attach(self, env) -> None:
        """Bind to a simulation environment and start flushing.

        The window grid is aligned to absolute virtual time (windows
        start at integer multiples of ``window_s``); instrument state at
        attach time becomes the baseline, so activity before ``attach``
        never leaks into the first window.
        """
        self._env = env
        now = env.now()
        self._last_flush_t = (now // self.window_s) * self.window_s
        self._baseline()
        self._repeating = env.every(self.window_s, self._flush)

    def arm(self) -> None:
        """Resume boundary flushes after the queue drained (no-op while
        armed).  Call before scheduling a new batch of work."""
        if self._repeating is None:
            raise RuntimeError("attach() the sampler to an environment first")
        self._repeating.arm()

    def close(self) -> None:
        """Flush the final (possibly partial) window and detach."""
        if self._env is None:
            return
        if self._repeating is not None:
            self._repeating.stop()
            self._repeating = None
        now = self._env.now()
        if now > self._last_flush_t:
            self._flush(now)

    # -- sampling -------------------------------------------------------------
    def _baseline(self) -> None:
        reg = self.registry
        for key, counter in reg.iter_counters():
            self._last_counters[key] = counter.value
        for key, gauge in reg.iter_gauges():
            self._last_gauges[key] = gauge.value
        for key, hist in reg.iter_histograms():
            self._last_hists[key] = (
                hist.count, hist.total, tuple(hist.bucket_counts)
            )

    def _flush(self, boundary: float) -> None:
        """Emit one point per instrument that changed in the window
        ``[self._last_flush_t, boundary)``; quiet instruments emit
        nothing, keeping series dumps sparse."""
        window = self._last_flush_t
        self._last_flush_t = boundary
        self.windows_flushed += 1
        reg = self.registry
        out: List[Dict[str, Any]] = []

        for key, counter in reg.iter_counters():
            delta = counter.value - self._last_counters.get(key, 0.0)
            if delta != 0.0:
                self._last_counters[key] = counter.value
                out.append(
                    {"metric": key, "window": window, "type": "counter",
                     "value": delta}
                )

        for key, gauge in reg.iter_gauges():
            value = gauge.value
            if key not in self._last_gauges or value != self._last_gauges[key]:
                self._last_gauges[key] = value
                out.append(
                    {"metric": key, "window": window, "type": "gauge",
                     "value": value}
                )

        for key, hist in reg.iter_histograms():
            prev = self._last_hists.get(key)
            if prev is None:
                prev = (0, 0.0, (0,) * len(hist.bucket_counts))
            d_count = hist.count - prev[0]
            if d_count == 0:
                continue
            d_sum = hist.total - prev[1]
            d_buckets = tuple(
                n - p for n, p in zip(hist.bucket_counts, prev[2])
            )
            self._last_hists[key] = (
                hist.count, hist.total, tuple(hist.bucket_counts)
            )
            buckets = {
                format_bound(b): d_buckets[i]
                for i, b in enumerate(hist.bounds)
                if d_buckets[i]
            }
            if d_buckets[len(hist.bounds)]:
                buckets["+Inf"] = d_buckets[len(hist.bounds)]
            point: Dict[str, Any] = {
                "metric": key, "window": window, "type": "histogram",
                "count": d_count, "sum": d_sum, "buckets": buckets,
            }
            for q in WINDOW_QUANTILES:
                point[_qkey(q)] = bucket_quantile(hist.bounds, d_buckets, q)
            out.append(point)

        out.sort(key=lambda p: p["metric"])
        self.points.extend(out)

    # -- export ---------------------------------------------------------------
    def to_jsonl(self) -> str:
        return series_to_jsonl(self.points, window_s=self.window_s)


# ------------------------------------------------------------------ ledger series
def ledger_series(
    ledger,
    accountant,
    window_s: float = DEFAULT_WINDOW_S,
    workflow: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Per-window, per-region carbon/cost/traffic series from the ledger.

    Buckets every metering record into the virtual-time window of its
    start timestamp and prices each (window, region) group through the
    given :class:`~repro.metrics.accounting.CarbonAccountant` (i.e.
    under *one* transmission scenario).  Emitted metrics:

    * ``ledger.carbon_g{region=..,workflow=..}`` — total carbon/window;
    * ``ledger.cost_usd{...}`` — total cost/window;
    * ``ledger.exec_seconds{...}`` — billed execution seconds/window;
    * ``ledger.requests{workflow=..}`` — requests *started*/window
      (distinct request ids by first execution).

    Deterministic: windows ascend, metrics sort within a window — the
    same ordering contract as :class:`WindowedSampler` points, so the
    two series merge cleanly.
    """

    def wstart(t: float) -> float:
        return (t // window_s) * window_s

    groups: Dict[Tuple[float, str, str], Dict[str, list]] = {}

    def bucket(t: float, region: str, wf: str) -> Dict[str, list]:
        key = (wstart(t), region, wf)
        if key not in groups:
            groups[key] = {
                "executions": [], "transmissions": [],
                "messages": [], "kv_accesses": [],
            }
        return groups[key]

    first_exec: Dict[str, Tuple[float, str]] = {}
    for rec in ledger.executions:
        if workflow is not None and rec.workflow != workflow:
            continue
        bucket(rec.start_s, rec.region, rec.workflow)["executions"].append(rec)
        seen = first_exec.get(rec.request_id)
        if seen is None or rec.start_s < seen[0]:
            first_exec[rec.request_id] = (rec.start_s, rec.workflow)
    for rec in ledger.transmissions:
        if workflow is not None and rec.workflow != workflow:
            continue
        bucket(rec.start_s, rec.src_region, rec.workflow)[
            "transmissions"
        ].append(rec)
    for rec in ledger.messages:
        if workflow is not None and rec.workflow != workflow:
            continue
        bucket(rec.start_s, rec.region, rec.workflow)["messages"].append(rec)
    for rec in ledger.kv_accesses:
        if workflow is not None and rec.workflow != workflow:
            continue
        bucket(rec.start_s, rec.region, rec.workflow)["kv_accesses"].append(rec)

    requests: Dict[Tuple[float, str], int] = {}
    for t, wf in first_exec.values():
        key = (wstart(t), wf)
        requests[key] = requests.get(key, 0) + 1

    points: List[Dict[str, Any]] = []
    for (window, region, wf), recs in groups.items():
        fp = accountant.price(
            executions=recs["executions"],
            transmissions=recs["transmissions"],
            messages=recs["messages"],
            kv_accesses=recs["kv_accesses"],
        )
        labels = f"{{region={region},workflow={wf}}}"
        points.append(
            {"metric": f"ledger.carbon_g{labels}", "window": window,
             "type": "counter", "value": fp.carbon_g}
        )
        points.append(
            {"metric": f"ledger.cost_usd{labels}", "window": window,
             "type": "counter", "value": fp.cost_usd}
        )
        points.append(
            {"metric": f"ledger.exec_seconds{labels}", "window": window,
             "type": "counter", "value": fp.exec_seconds}
        )
    for (window, wf), n in requests.items():
        points.append(
            {"metric": f"ledger.requests{{workflow={wf}}}", "window": window,
             "type": "counter", "value": float(n)}
        )
    points.sort(key=_point_sort_key)
    return points


def merge_series(*series: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Merge point lists into one window-then-metric sorted series."""
    merged: List[Dict[str, Any]] = []
    for s in series:
        merged.extend(s)
    merged.sort(key=_point_sort_key)
    return merged


# ------------------------------------------------------------------ JSONL export
def series_to_jsonl(
    points: Sequence[Dict[str, Any]], window_s: float = DEFAULT_WINDOW_S
) -> str:
    """Serialise points as JSONL: one header line (schema + window
    size), then one sorted-key compact line per point."""
    import json

    lines = [
        json.dumps(
            {"schema": SERIES_SCHEMA, "window_s": window_s},
            sort_keys=True, separators=(",", ":"),
        )
    ]
    for point in points:
        lines.append(
            json.dumps(point, sort_keys=True, separators=(",", ":"))
        )
    return "\n".join(lines) + "\n"


def load_series_jsonl(source) -> Tuple[List[Dict[str, Any]], float]:
    """Load ``(points, window_s)`` from a path, file object, or text."""
    import json

    if hasattr(source, "read"):
        text = source.read()
    else:
        text = str(source)
        if "\n" not in text and text.endswith(".jsonl"):
            with open(text, "r", encoding="utf-8") as fh:
                text = fh.read()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return [], DEFAULT_WINDOW_S
    header = json.loads(lines[0])
    if header.get("schema") != SERIES_SCHEMA:
        raise ValueError(
            f"not a series dump (schema={header.get('schema')!r}, "
            f"expected {SERIES_SCHEMA!r})"
        )
    window_s = float(header.get("window_s", DEFAULT_WINDOW_S))
    return [json.loads(line) for line in lines[1:]], window_s


def export_series(points, destination, window_s: float = DEFAULT_WINDOW_S) -> None:
    """Write a series dump to a path or file object."""
    text = series_to_jsonl(points, window_s=window_s)
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as fh:
            fh.write(text)


# ------------------------------------------------------------------ Prometheus
def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    return "caribou_" + "".join(out)


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fnum(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of a registry's cumulative state.

    Counters and gauges expose one sample per label set; histograms
    expose Prometheus-style *cumulative* ``_bucket{le=..}`` samples
    plus ``_sum``/``_count``.  Families sort by name, samples by label
    set — the output is byte-deterministic (the golden snapshot test
    pins the quickstart exposition).
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str, ftype: str) -> List[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = {"type": ftype, "samples": []}
        return entry["samples"]

    for key, counter in registry.iter_counters():
        name, labels = parse_key(key)
        pname = _prom_name(name)
        family(pname, "counter").append(
            f"{pname}{_prom_labels(labels)} {_fnum(counter.value)}"
        )
    for key, gauge in registry.iter_gauges():
        name, labels = parse_key(key)
        pname = _prom_name(name)
        family(pname, "gauge").append(
            f"{pname}{_prom_labels(labels)} {_fnum(gauge.value)}"
        )
    for key, hist in registry.iter_histograms():
        name, labels = parse_key(key)
        pname = _prom_name(name)
        samples = family(pname, "histogram")
        cumulative = 0
        for i, bound in enumerate(hist.bounds):
            cumulative += hist.bucket_counts[i]
            le = _prom_labels(labels, f'le="{format_bound(bound)}"')
            samples.append(f"{pname}_bucket{le} {cumulative}")
        le = _prom_labels(labels, 'le="+Inf"')
        samples.append(f"{pname}_bucket{le} {hist.count}")
        samples.append(f"{pname}_sum{_prom_labels(labels)} {_fnum(hist.total)}")
        samples.append(f"{pname}_count{_prom_labels(labels)} {hist.count}")

    lines: List[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {name} {entry['type']}")
        lines.extend(sorted(entry["samples"]) if entry["type"] != "histogram"
                     else entry["samples"])
    return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------------ config
@dataclass(frozen=True)
class TelemetryConfig:
    """Harness-level switch for windowed telemetry on one run.

    ``slos`` are :class:`~repro.obs.slo.SloSpec` objects evaluated over
    the merged (sampler + ledger) series after the run; ``ledger``
    controls whether the post-run per-window carbon/cost series is
    built (priced under the run's first transmission scenario).
    """

    window_s: float = DEFAULT_WINDOW_S
    slos: Tuple = ()
    ledger: bool = True
