"""Trace rendering and offline-analysis helpers.

Turns a span list (live :class:`~repro.obs.trace.Tracer` or a JSONL
file re-loaded with :func:`load_jsonl`) into:

* a per-kind summary table (:func:`render_trace_summary`) — span
  counts, total/mean virtual duration — plus request terminal states;
* an indented span tree (:func:`render_span_tree`) following
  parent/child links, optionally scoped to one request.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.trace import Span, Tracer


def _spans_of(source: Union[Tracer, Sequence[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        source.finalize()
        return list(source.spans)
    return list(source)


def load_jsonl(source) -> List[Span]:
    """Load spans from a JSONL path, file object, or string."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = str(source)
        if "\n" not in text and text.endswith(".jsonl"):
            with open(text, "r", encoding="utf-8") as fh:
                text = fh.read()
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def render_trace_summary(source: Union[Tracer, Sequence[Span]]) -> str:
    """Aggregate view: per-kind counts and durations, request outcomes."""
    spans = _spans_of(source)
    if not spans:
        return "(empty trace)"
    by_kind: "OrderedDict[str, List[Span]]" = OrderedDict()
    for span in spans:
        by_kind.setdefault(span.kind, []).append(span)

    lines = [f"{len(spans)} spans"]
    lines.append(f"{'kind':18s} {'count':>7s} {'total_s':>12s} {'mean_s':>12s}")
    for kind, group in by_kind.items():
        total = sum(s.duration_s for s in group)
        lines.append(
            f"{kind:18s} {len(group):7d} {total:12.3f} {total / len(group):12.4f}"
        )

    requests = by_kind.get("request", [])
    if requests:
        outcomes: Dict[str, int] = {}
        for span in requests:
            status = str(span.attrs.get("status", "open"))
            outcomes[status] = outcomes.get(status, 0) + 1
        summary = ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
        lines.append(f"requests: {summary}")
    return "\n".join(lines)


def render_span_tree(
    source: Union[Tracer, Sequence[Span]],
    request_id: Optional[str] = None,
    max_spans: int = 200,
) -> str:
    """Indented tree of spans (depth-first, creation order).

    Args:
        source: Tracer or span sequence.
        request_id: Restrict to one request's tree.
        max_spans: Truncate huge traces (a note marks the cut).
    """
    spans = _spans_of(source)
    if request_id is not None:
        spans = [s for s in spans if s.request_id == request_id]
    if not spans:
        return "(no spans)"

    ids = {s.span_id for s in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)

    lines: List[str] = []
    truncated = False

    def walk(parent: Optional[int], depth: int) -> None:
        nonlocal truncated
        for span in children.get(parent, ()):
            if len(lines) >= max_spans:
                truncated = True
                return
            end = span.t1 if span.t1 is not None else span.t0
            extra = ""
            if span.kind == "request":
                extra = f" [{span.attrs.get('status', 'open')}]"
            elif "error" in span.attrs:
                extra = f" [error={span.attrs['error']}]"
            lines.append(
                f"{'  ' * depth}{span.kind}:{span.name}"
                f" ({span.t0:.3f}..{end:.3f}, {end - span.t0:.4f}s){extra}"
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    if truncated:
        lines.append(f"... truncated at {max_spans} spans")
    return "\n".join(lines)


def spans_by_kind(
    source: Union[Tracer, Sequence[Span]], kind: str
) -> List[Span]:
    """All spans of one kind (test/analysis convenience)."""
    return [s for s in _spans_of(source) if s.kind == kind]


def requests_in(source: Union[Tracer, Sequence[Span]]) -> List[str]:
    """Distinct request ids in first-seen order."""
    seen: "OrderedDict[str, None]" = OrderedDict()
    for span in _spans_of(source):
        if span.request_id:
            seen.setdefault(span.request_id, None)
    return list(seen)


def group_by_request(
    source: Union[Tracer, Sequence[Span]],
) -> Dict[str, List[Span]]:
    """request id -> its spans (roots included), creation order."""
    grouped: Dict[str, List[Span]] = {}
    for span in _spans_of(source):
        if span.request_id:
            grouped.setdefault(span.request_id, []).append(span)
    return grouped


def iter_lines(spans: Iterable[Span]) -> Iterable[str]:
    """JSONL lines for an arbitrary span iterable."""
    for span in spans:
        yield json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
