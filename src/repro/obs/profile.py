"""Lightweight wall-clock phase profiling (CloudProfiler-style).

Unlike everything else in :mod:`repro.obs`, this module measures *host*
time, not virtual time: it exists to answer "how fast does the repo run
on this machine" (the ROADMAP's perf trajectory), so its numbers are
intentionally machine-dependent and never enter a simulation, a ledger,
or a deterministic report.

Hot paths wrap themselves in named phases::

    from repro.obs.profile import profiled_phase

    with profiled_phase("solver.solve_hour"):
        ...

Phases are scoped and nestable; each accumulates call count, total
wall time, and self time (total minus time spent in nested phases).
The default profiler is the shared no-op :data:`NULL_PROFILER`, so an
un-benchmarked run pays one function call and an empty context manager
per phase — nothing is timed, allocated, or stored.  The benchmark
harness (``scripts/bench.py``) installs a real :class:`Profiler` via
:func:`set_profiler` around the workload it measures.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Union


class _PhaseScope:
    """Context manager for one live phase invocation."""

    __slots__ = ("_profiler", "_name", "_t0", "_child_s")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0
        self._child_s = 0.0

    def __enter__(self) -> "_PhaseScope":
        self._t0 = time.perf_counter()
        self._profiler._stack().append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = time.perf_counter() - self._t0
        stack = self._profiler._stack()
        stack.pop()
        if stack:
            stack[-1]._child_s += elapsed
        self._profiler._accumulate(self._name, elapsed, self._child_s)
        return False


class Profiler:
    """Accumulates wall time per named phase.

    Thread-safe: the nesting stack is thread-local (a worker's phases
    nest under the worker's own enclosing phases, never a sibling
    thread's) and accumulation into the shared stats table is
    lock-guarded — the parallel ``solve_day`` hour workers all report
    ``solver.solve_hour`` into one table concurrently.
    """

    enabled = True

    def __init__(self) -> None:
        # name -> [calls, total_s, self_s]
        self._stats: Dict[str, List[float]] = {}
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> List[_PhaseScope]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def phase(self, name: str) -> _PhaseScope:
        return _PhaseScope(self, name)

    def _accumulate(self, name: str, elapsed: float, child_s: float) -> None:
        with self._lock:
            entry = self._stats.get(name)
            if entry is None:
                entry = self._stats[name] = [0, 0.0, 0.0]
            entry[0] += 1
            entry[1] += elapsed
            entry[2] += max(0.0, elapsed - child_s)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Sorted ``{phase: {calls, total_s, self_s}}`` view."""
        with self._lock:
            return {
                name: {
                    "calls": int(entry[0]),
                    "self_s": entry[2],
                    "total_s": entry[1],
                }
                for name, entry in sorted(self._stats.items())
            }

    def total_s(self, name: str) -> float:
        with self._lock:
            entry = self._stats.get(name)
            return entry[1] if entry else 0.0

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
        self._stack().clear()

    def summary(self) -> str:
        lines = [
            f"{'phase':32s} {'calls':>8s} {'total_s':>10s} {'self_s':>10s}"
        ]
        for name, entry in self.snapshot().items():
            lines.append(
                f"{name:32s} {entry['calls']:8d} "
                f"{entry['total_s']:10.4f} {entry['self_s']:10.4f}"
            )
        return "\n".join(lines)


class NullProfiler:
    """The disabled profiler: phases cost one no-op context manager."""

    enabled = False

    class _NullScope:
        __slots__ = ()

        def __enter__(self) -> "NullProfiler._NullScope":
            return self

        def __exit__(self, *exc_info) -> bool:
            return False

    _SCOPE = _NullScope()

    def phase(self, name: str) -> "NullProfiler._NullScope":
        return self._SCOPE

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {}

    def total_s(self, name: str) -> float:
        return 0.0

    def reset(self) -> None:
        pass

    def summary(self) -> str:
        return "(profiling disabled)"


#: Shared no-op profiler; the process-wide default.
NULL_PROFILER = NullProfiler()

_ACTIVE: Union[Profiler, NullProfiler] = NULL_PROFILER


def get_profiler() -> Union[Profiler, NullProfiler]:
    """The currently installed profiler (default: :data:`NULL_PROFILER`)."""
    return _ACTIVE


def set_profiler(
    profiler: Union[Profiler, NullProfiler, None],
) -> Union[Profiler, NullProfiler]:
    """Install ``profiler`` process-wide (``None`` restores the no-op).

    Returns the previously installed profiler so callers can restore it::

        prev = set_profiler(Profiler())
        try:
            ...
        finally:
            set_profiler(prev)
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler if profiler is not None else NULL_PROFILER
    return previous


def profiled_phase(name: str):
    """Open a phase on the active profiler (the hot-path entry point)."""
    return _ACTIVE.phase(name)
