"""Lightweight metrics registry (counters, gauges, histograms).

The services of the simulated cloud and the Caribou runtime report
operational metrics here — invocation counts per region, cold starts,
pub/sub retries, KV read/write units, network egress, solver progress.
Unlike the :class:`~repro.cloud.ledger.MeteringLedger` (which stores
every record for the paper's carbon/cost models), the registry keeps
only aggregates, so it stays cheap at any traffic volume.

Instruments are identified by a name plus optional labels; repeated
lookups return the same instrument.  A registry built with
``enabled=False`` (or the shared :data:`NULL_METRICS`) hands out no-op
instruments, making instrumentation free where observability is off.
All state is plain dict/float bookkeeping — no RNG, no clock, no
events — so recording metrics can never perturb a simulation.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, Optional, Tuple

#: Default histogram bucket upper bounds (seconds-oriented; byte-sized
#: histograms pass their own).  The terminal +inf bucket is implicit.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)


def format_bound(bound: float) -> str:
    """Canonical string form of a histogram bucket bound (``"0.001"``,
    ``"5"``, ...); the overflow bucket is spelled ``"+Inf"`` by callers."""
    return format(bound, "g")


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`_key`: ``"name{k=v,k2=v2}" -> ("name", {...})``.

    Used by the exporters and the windowed sampler, which need the
    label dimensions (workflow, region, status) back out of the flat
    instrument keys the registry stores.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    inner = key[brace + 1 : -1]
    labels: Dict[str, str] = {}
    if inner:
        for part in inner.split(","):
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def _key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    if len(labels) == 1:
        # The overwhelmingly common shape (one region= or workflow=
        # label) — skip the sort/join machinery on the hot path.
        [(k, v)] = labels.items()
        return f"{name}{{{k}={v}}}"
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Streaming distribution summary: count/sum/min/max + buckets.

    Buckets hold counts of observations ``<= bound``; an implicit final
    bucket catches the rest.  No raw samples are retained.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile, linearly interpolated within the bucket.

        The winning bucket is the first whose cumulative count reaches
        ``q * count``; the estimate interpolates between that bucket's
        lower and upper bound by the fraction of the target rank inside
        it (the classic Prometheus ``histogram_quantile`` rule).  The
        first bucket's lower bound and the overflow bucket's upper
        bound are the observed ``min``/``max``, and results are clamped
        to ``[min, max]`` so a coarse bucket can never report a value
        outside the observed range.  ``q=0`` is exactly ``min`` and
        ``q=1`` exactly ``max``; an empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            prev_seen = seen
            seen += n
            if seen >= target and n:
                lo = self.min if i == 0 else self.bounds[i - 1]
                hi = self.max if i >= len(self.bounds) else self.bounds[i]
                frac = (target - prev_seen) / n
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
        return self.max


class _NullInstrument:
    """Stands in for every instrument type when the registry is off."""

    __slots__ = ()
    name = "<disabled>"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Hands out named instruments and snapshots their state."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) --------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(key)
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(key)
        return inst

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                key, tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
            )
        return inst

    # -- iteration (sorted, for deterministic export) --------------------------
    def iter_counters(self) -> Iterable[Tuple[str, Counter]]:
        for key in sorted(self._counters):
            yield key, self._counters[key]

    def iter_gauges(self) -> Iterable[Tuple[str, Gauge]]:
        for key in sorted(self._gauges):
            yield key, self._gauges[key]

    def iter_histograms(self) -> Iterable[Tuple[str, Histogram]]:
        for key in sorted(self._histograms):
            yield key, self._histograms[key]

    # -- export ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Flat, sorted, JSON-serialisable view of every instrument.

        Histogram entries carry the summary stats plus a ``buckets``
        mapping of upper bound (``"0.001"`` .. ``"+Inf"``, formatted
        with :func:`format_bound`) to cumulative-within-run count per
        bucket — the windowed sampler and the Prometheus exporter need
        the full distribution, not just mean/quantiles.  The summary
        keys (``count``/``sum``/``mean``/``min``/``max``) are stable;
        ``buckets`` is purely additive.
        """
        out: Dict[str, Any] = {}
        for key in sorted(self._counters):
            out[key] = self._counters[key].value
        for key in sorted(self._gauges):
            out[key] = self._gauges[key].value
        for key in sorted(self._histograms):
            h = self._histograms[key]
            buckets = {
                format_bound(b): h.bucket_counts[i]
                for i, b in enumerate(h.bounds)
            }
            buckets["+Inf"] = h.bucket_counts[len(h.bounds)]
            out[key] = {
                "count": h.count,
                "sum": h.total,
                "mean": h.mean,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
                "buckets": buckets,
            }
        return out

    def summary(self, prefix: str = "") -> str:
        """Human-readable digest, one instrument per line."""
        lines = []
        for key, value in self.snapshot().items():
            if prefix and not key.startswith(prefix):
                continue
            if isinstance(value, dict):
                lines.append(
                    f"{key}: n={value['count']} mean={value['mean']:.6g} "
                    f"min={value['min']:.6g} max={value['max']:.6g}"
                )
            else:
                lines.append(f"{key}: {value:g}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


#: Shared disabled registry for call sites that want a hard no-op.
NULL_METRICS = MetricsRegistry(enabled=False)
