"""Unified run reports: one deterministic document per experiment run.

A :class:`RunReport` merges everything the repo already measures about
one run — the harness's per-invocation means, the ledger's per-region
carbon/cost, the :class:`~repro.obs.metrics.MetricsRegistry` snapshot,
:class:`~repro.cloud.faults.ReliabilityStats`, solver counters, and
(when the run was traced) the critical-path aggregates of
:mod:`repro.obs.critical_path` — into a single sorted-key JSON document
plus a markdown rendering.

Determinism is a hard requirement (the golden-report regression test
pins the quickstart report byte-for-byte), so wall-clock values are
excluded: solver stats drop ``wall_time_s``, and nothing here reads the
host clock.  Every float in the document derives from the virtual
simulation alone.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Union

from repro.obs.critical_path import analyze_trace
from repro.obs.trace import Span, Tracer

#: Schema identifier embedded in (and validated from) every report.
REPORT_SCHEMA = "caribou.run_report/v1"

#: Top-level keys every report document carries, in sorted order.
REPORT_KEYS = (
    "critical_path",
    "fleet",
    "metrics",
    "per_region",
    "reliability",
    "run",
    "scenarios",
    "schema",
    "slo",
    "solver",
)


def _finite(value: Any) -> Any:
    """JSON-safe numbers: NaN/inf become None (strict JSON has neither)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _sanitize(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {str(k): _sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(v) for v in obj]
    return _finite(obj)


@dataclass
class RunReport:
    """One run's merged observability document."""

    doc: Dict[str, Any]

    def to_json(self) -> str:
        """Canonical serialisation: sorted keys, 2-space indent, LF."""
        return json.dumps(
            self.doc, sort_keys=True, indent=2, allow_nan=False
        ) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        doc = json.loads(text)
        if doc.get("schema") != REPORT_SCHEMA:
            raise ValueError(
                f"not a run report (schema={doc.get('schema')!r}, "
                f"expected {REPORT_SCHEMA!r})"
            )
        return cls(doc)

    def export(self, destination) -> None:
        text = self.to_json()
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w", encoding="utf-8") as fh:
                fh.write(text)

    # -- rendering -----------------------------------------------------------
    def to_markdown(self) -> str:
        """Human-readable report (GitHub-flavoured markdown)."""
        doc = self.doc
        run = doc.get("run", {})
        lines = [
            f"# Run report — {run.get('label', '?')}",
            "",
            f"- **app**: {run.get('app')} ({run.get('input_size')})",
            f"- **invocations**: {run.get('n_invocations')}",
            f"- **mean service time**: {_fmt(run.get('mean_service_time_s'))} s"
            f" (p95 {_fmt(run.get('p95_service_time_s'))} s)",
            f"- **regions used**: {', '.join(run.get('regions_used', [])) or '-'}",
        ]

        scenarios = doc.get("scenarios") or {}
        if scenarios:
            lines += [
                "",
                "## Carbon & cost (per invocation)",
                "",
                "| scenario | carbon mg | exec mg | trans mg | cost $ |",
                "|---|---|---|---|---|",
            ]
            for name in sorted(scenarios):
                s = scenarios[name]
                lines.append(
                    f"| {name} | {_fmt(_mg(s.get('mean_carbon_g')))} "
                    f"| {_fmt(_mg(s.get('mean_exec_carbon_g')))} "
                    f"| {_fmt(_mg(s.get('mean_trans_carbon_g')))} "
                    f"| {_fmt(s.get('mean_cost_usd'), 6)} |"
                )

        per_region = doc.get("per_region") or {}
        for scenario in sorted(per_region):
            regions = per_region[scenario]
            lines += [
                "",
                f"## Per-region usage — {scenario}",
                "",
                "| region | execs | exec s | carbon g | cost $ | egress MB |",
                "|---|---|---|---|---|---|",
            ]
            for region in sorted(regions):
                r = regions[region]
                lines.append(
                    f"| {region} | {int(r.get('n_executions', 0))} "
                    f"| {_fmt(r.get('exec_seconds'))} "
                    f"| {_fmt(r.get('carbon_g'), 4)} "
                    f"| {_fmt(r.get('cost_usd'), 6)} "
                    f"| {_fmt((r.get('bytes_out') or 0.0) / 1e6)} |"
                )

        cp = doc.get("critical_path")
        if cp:
            lines += [
                "",
                "## Critical path",
                "",
                f"- **requests analyzed**: {cp.get('n_requests')}",
                f"- **mean latency**: {_fmt(cp.get('mean_latency_s'))} s"
                f" (p95 {_fmt(cp.get('p95_latency_s'))} s)",
                "",
                "| segment kind | seconds | share |",
                "|---|---|---|",
            ]
            for kind, entry in (cp.get("by_kind") or {}).items():
                lines.append(
                    f"| {kind} | {_fmt(entry.get('seconds'))} "
                    f"| {_pct(entry.get('share'))} |"
                )
            nodes = cp.get("by_node") or {}
            if nodes:
                lines += ["", "| node | seconds | share |", "|---|---|---|"]
                ranked = sorted(
                    nodes.items(),
                    key=lambda kv: -(kv[1].get("seconds") or 0.0),
                )
                for node, entry in ranked[:10]:
                    lines.append(
                        f"| {node} | {_fmt(entry.get('seconds'))} "
                        f"| {_pct(entry.get('share'))} |"
                    )
            gates = cp.get("sync_gates") or {}
            if gates:
                lines += [
                    "",
                    "### Sync barriers",
                    "",
                    "| sync node | joins | gated by | mean straggle s |",
                    "|---|---|---|---|",
                ]
                for node in sorted(gates):
                    g = gates[node]
                    gated = ", ".join(
                        f"{edge} ×{count}"
                        for edge, count in (g.get("gated_by") or {}).items()
                    )
                    lines.append(
                        f"| {node} | {g.get('n')} | {gated} "
                        f"| {_fmt(g.get('mean_straggle_s'))} |"
                    )

        reliability = doc.get("reliability")
        if reliability:
            lines += ["", "## Reliability", ""]
            for key in sorted(reliability):
                value = reliability[key]
                if isinstance(value, dict):
                    value = (
                        ", ".join(
                            f"{k}={v}" for k, v in sorted(value.items())
                        )
                        or "none"
                    )
                lines.append(f"- **{key}**: {value}")

        solver = doc.get("solver")
        if solver:
            lines += ["", "## Solver", ""]
            for key in sorted(solver):
                lines.append(f"- **{key}**: {solver[key]}")

        fleet = doc.get("fleet")
        if fleet:
            lines += fleet_markdown_lines(fleet)

        slo = doc.get("slo")
        if slo:
            lines += [
                "",
                "## SLOs",
                "",
                "| objective | windows | violations | compliance "
                "| budget spent | alerts | met |",
                "|---|---|---|---|---|---|---|",
            ]
            for entry in slo:
                met = "yes" if entry.get("met") else "**no**"
                lines.append(
                    f"| `{entry.get('name')}` | {entry.get('windows')} "
                    f"| {entry.get('violations')} "
                    f"| {_pct(entry.get('compliance'))} "
                    f"| {_pct(entry.get('budget_spent'))} "
                    f"| {len(entry.get('alerts') or [])} | {met} |"
                )

        metrics = doc.get("metrics") or {}
        if metrics:
            lines += [
                "",
                "## Metrics",
                "",
                f"{len(metrics)} instruments",
                "",
                "```",
            ]
            for key in sorted(metrics):
                value = metrics[key]
                if isinstance(value, dict):
                    lines.append(
                        f"{key}: n={value.get('count')} "
                        f"mean={_fmt(value.get('mean'), 6)} "
                        f"max={_fmt(value.get('max'), 6)}"
                    )
                else:
                    lines.append(f"{key}: {_fmt(value, 6)}")
            lines.append("```")

        return "\n".join(lines) + "\n"


def fleet_markdown_lines(fleet: Dict[str, Any]) -> list:
    """Markdown lines for a fleet rollup: fleet totals plus the
    per-workflow breakdown table.  Shared by :meth:`RunReport.to_markdown`
    and the ``caribou fleet-report`` subcommand."""
    lines = ["", "## Fleet", ""]
    for key in sorted(fleet):
        if key == "per_workflow":
            continue
        lines.append(f"- **{key}**: {fleet[key]}")
    per_workflow = fleet.get("per_workflow") or {}
    if per_workflow:
        lines += [
            "",
            "| workflow | checks | solves | migrations "
            "| invocations | tokens g |",
            "|---|---|---|---|---|---|",
        ]
        for name in sorted(per_workflow):
            w = per_workflow[name]
            lines.append(
                f"| {name} | {w.get('checks')} | {w.get('solves')} "
                f"| {w.get('migrations')} "
                f"| {w.get('invocations_observed')} "
                f"| {_fmt(w.get('tokens_g'))} |"
            )
    return lines


def _mg(grams: Optional[float]) -> Optional[float]:
    return None if grams is None else grams * 1000.0


def _fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not math.isfinite(value):
        return "-"
    return f"{value:.{digits}f}"


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 100:.1f}%"


def build_run_report(
    outcome,
    trace: Optional[Union[Tracer, Sequence[Span]]] = None,
    fleet: Optional[Dict[str, Any]] = None,
    slo: Optional[Sequence[Dict[str, Any]]] = None,
) -> RunReport:
    """Assemble the report for one harness :class:`RunOutcome`.

    ``trace`` (a live tracer or reloaded span list) enables the
    critical-path section; without it the section is ``None`` and the
    run itself is untouched — reporting never perturbs a simulation.
    ``fleet`` (a :meth:`~repro.core.fleet.FleetManager.fleet_report`
    rollup) enables the fleet section for sweep runs.  ``slo`` (per-SLO
    evaluation dicts) defaults to the outcome's own ``slo`` attribute
    when a telemetered run already evaluated its objectives.
    """
    if slo is None:
        slo = getattr(outcome, "slo", None)
    run = {
        "app": outcome.app_name,
        "input_size": outcome.input_size,
        "label": outcome.label,
        "mean_service_time_s": outcome.mean_service_time_s,
        "n_invocations": outcome.n_invocations,
        "p95_service_time_s": outcome.p95_service_time_s,
        "regions_used": list(outcome.regions_used),
    }
    scenarios = {
        name: {
            "mean_carbon_g": stats.mean_carbon_g,
            "mean_cost_usd": stats.mean_cost_usd,
            "mean_exec_carbon_g": stats.mean_exec_carbon_g,
            "mean_trans_carbon_g": stats.mean_trans_carbon_g,
        }
        for name, stats in (outcome.per_scenario or {}).items()
    }

    reliability = None
    if outcome.reliability is not None:
        stats = outcome.reliability
        reliability = {
            "completed_requests": stats.completed_requests,
            "dead_letters": stats.dead_letters,
            "failed_requests": stats.failed_requests,
            "home_fallbacks": stats.home_fallbacks,
            "injected": dict(sorted(stats.injected.items())),
            "retries": stats.retries,
            "timed_out_requests": stats.timed_out_requests,
        }

    solver = None
    if outcome.solver_stats is not None:
        s = outcome.solver_stats
        # wall_time_s is host-dependent and intentionally excluded: the
        # report must be byte-stable across machines for the golden test.
        solver = {
            "estimate_cache_hits": s.estimate_cache_hits,
            "estimates_computed": s.estimates_computed,
            "profile_cache_hits": s.profile_cache_hits,
            "profiles_built": s.profiles_built,
            "samples_drawn": s.samples_drawn,
            "simulations_run": s.simulations_run,
        }

    critical_path = None
    if trace is not None:
        critical_path = analyze_trace(trace).aggregate()

    doc = _sanitize(
        {
            "critical_path": critical_path,
            "fleet": fleet,
            "metrics": outcome.metrics or {},
            "per_region": outcome.per_region or {},
            "reliability": reliability,
            "run": run,
            "scenarios": scenarios,
            "schema": REPORT_SCHEMA,
            "slo": list(slo) if slo else None,
            "solver": solver,
        }
    )
    return RunReport(doc)
