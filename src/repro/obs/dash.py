"""Offline terminal dashboard: sparklines over windowed series.

``caribou dash run.series.jsonl`` renders the per-window telemetry of a
finished run as unicode sparklines — per-workflow / per-region carbon,
cost, request latency (p95), and SLO budget burn — so a fleet sweep can
be eyeballed without leaving the terminal or shipping data anywhere.
Pure function of the loaded series (plus optional SLO results), so the
output is deterministic and safe to pin in tests.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import parse_key

#: Eight-level block characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """Render values as a block-character sparkline.

    Scales to the series' own min/max (a flat series renders as all-low
    blocks); ``width`` > 0 downsamples long series by bucket-maximum,
    so short spikes stay visible after compression.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width and len(vals) > width:
        # Bucket-maximum downsampling: never hide a spike.
        bucketed = []
        for i in range(width):
            lo = i * len(vals) // width
            hi = max(lo + 1, (i + 1) * len(vals) // width)
            bucketed.append(max(vals[lo:hi]))
        vals = bucketed
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(vals)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[int((v - lo) / span * top + 0.5)] for v in vals
    )


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _collect(
    points: Sequence[Dict[str, Any]],
    metric_name: str,
    group_label: str,
    stat: Optional[str] = None,
) -> Tuple[List[float], Dict[str, Dict[float, float]]]:
    """Group a metric's points by one label dimension.

    Returns ``(sorted windows, {label value -> {window -> value}})``;
    points missing the label fall under ``"-"``.
    """
    windows: set = set()
    groups: Dict[str, Dict[float, float]] = {}
    for p in points:
        name, labels = parse_key(p["metric"])
        if name != metric_name:
            continue
        value = p.get(stat) if stat else p.get("value")
        if value is None:
            continue
        group = labels.get(group_label, "-")
        windows.add(float(p["window"]))
        series = groups.setdefault(group, {})
        series[float(p["window"])] = series.get(float(p["window"]), 0.0) + value
    return sorted(windows), groups


def _section(
    title: str,
    unit: str,
    windows: List[float],
    groups: Dict[str, Dict[float, float]],
    width: int,
) -> List[str]:
    if not groups:
        return []
    lines = [f"### {title}"]
    name_w = max(len(g) for g in groups)
    for group in sorted(groups):
        series = groups[group]
        values = [series.get(w, 0.0) for w in windows]
        total = sum(values)
        peak = max(values) if values else 0.0
        lines.append(
            f"  {group:<{name_w}}  {sparkline(values, width)}  "
            f"sum={_fmt(total)}{unit} peak={_fmt(peak)}{unit}"
        )
    lines.append("")
    return lines


def render_dashboard(
    points: Sequence[Dict[str, Any]],
    slo_results: Optional[Sequence[Dict[str, Any]]] = None,
    window_s: float = 3600.0,
    width: int = 48,
) -> str:
    """Render the full dashboard for one run's series.

    Sections (each skipped when its metric is absent): carbon by region
    and by workflow, cost by region, request p95 latency by workflow,
    request volume by workflow, and — when SLO results are supplied —
    one budget-burn line per objective.
    """
    all_windows = sorted({float(p["window"]) for p in points})
    lines = [
        "# Caribou run dashboard",
        f"{len(all_windows)} window(s) x {_fmt(window_s)}s virtual time, "
        f"{len(points)} series point(s)",
        "",
    ]

    w, g = _collect(points, "ledger.carbon_g", "region")
    lines += _section("Carbon by region (g)", "g", w, g, width)
    w, g = _collect(points, "ledger.carbon_g", "workflow")
    if len(g) > 1:  # single-workflow runs: the region view already covers it
        lines += _section("Carbon by workflow (g)", "g", w, g, width)
    w, g = _collect(points, "ledger.cost_usd", "region")
    lines += _section("Cost by region (USD)", "$", w, g, width)
    w, g = _collect(
        points, "executor.request_latency_s", "workflow", stat="p95"
    )
    lines += _section("Request latency p95 by workflow (s)", "s", w, g, width)
    w, g = _collect(points, "executor.requests", "workflow")
    lines += _section("Requests by workflow", "", w, g, width)

    if slo_results:
        lines.append("### SLO budget")
        for result in slo_results:
            status = "OK " if result.get("met") else "MISS"
            spent = result.get("budget_spent", 0.0)
            bar_n = min(int(spent * 10 + 0.5), 20)
            bar = "#" * bar_n + "." * max(0, 10 - bar_n)
            lines.append(
                f"  [{status}] {result['name']}  budget [{bar}] "
                f"{spent * 100:.0f}% spent, "
                f"{result.get('violations', 0)}/{result.get('windows', 0)} "
                f"window(s) violating, {len(result.get('alerts', []))} "
                "alert(s)"
            )
        lines.append("")

    return "\n".join(lines).rstrip("\n") + "\n"
