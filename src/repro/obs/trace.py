"""Structured tracing over virtual time.

A :class:`Span` is one operation with a virtual-time interval
``[t0, t1]`` and a link to its parent.  The hierarchy follows the
request lifecycle the executor already tracks:

* one ``request`` root span per tracked request (opened at
  ``invoke()``, closed at the terminal state);
* operation spans — ``invocation``, ``publish``, ``kv``, ``transfer`` —
  are children of their request's root.  A span created *synchronously
  inside* another traced scope (e.g. the network transfer a publish
  performs) becomes that scope's child instead, giving a genuine tree;
* control-plane spans — ``solve`` / ``solver_hour`` /
  ``solver_iteration`` and ``migration`` / ``deploy`` — carry no
  request id and form their own trees.

Design constraints, both load-bearing for the test suite:

**Determinism.**  Span ids are a simple monotonic counter, timestamps
come from the shared :class:`~repro.common.clock.VirtualClock`, and
JSONL serialisation uses sorted keys and compact separators — two runs
with the same seed produce *byte-identical* traces.

**Zero cost when disabled.**  Services default to :data:`NULL_TRACER`,
whose methods are no-ops that allocate nothing, never read the clock,
never draw randomness, and never schedule events.  Callers guard
attribute-dict construction behind ``tracer.enabled`` so a disabled run
pays only a boolean check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, TextIO

from repro.common.clock import VirtualClock

#: The span taxonomy.  ``attrs`` may refine a kind (e.g. a ``kv`` span's
#: ``op``), but every span's ``kind`` is one of these.
SPAN_KINDS = (
    "request",  # one per tracked end-user request (the root)
    "invocation",  # one function execution window [start_s, end_s]
    "publish",  # pub/sub publish-to-delivery-handoff window
    "kv",  # one key-value store operation
    "transfer",  # one network transfer
    "sync_gate",  # a sync-node invocation condition completing (Eq. 4.1)
    "solve",  # one solver run over a set of hours
    "solver_hour",  # one per-hour HBSS search
    "solver_iteration",  # one HBSS candidate evaluation
    "migration",  # one migrator rollout attempt
    "deploy",  # one function materialisation within a migration
)


@dataclass(slots=True)
class Span:
    """One traced operation over a virtual-time interval.

    Slotted: span construction sits on the traced hot path (one span
    per simulated operation), and slots cut both per-span memory and
    attribute-access cost versus a ``__dict__``-backed dataclass.
    """

    span_id: int
    kind: str
    name: str
    t0: float
    t1: Optional[float] = None  # None while still open
    parent_id: Optional[int] = None
    workflow: str = ""
    request_id: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Closed interval length (0.0 while the span is open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "parent_id": self.parent_id,
            "workflow": self.workflow,
            "request_id": self.request_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Span":
        return cls(**raw)


class _SpanScope:
    """Context manager making a span the parent of synchronous children.

    ``end_at`` sets the span's virtual end time, which may lie in the
    future (a publish span ends when the message is handed to the
    subscriber, long after the synchronous ``publish()`` call returns).
    Without an explicit end the span closes at the clock's current time
    on scope exit.  An exception closes the span immediately and tags it
    with the error type.
    """

    __slots__ = ("_tracer", "span", "_end_at")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._end_at: Optional[float] = None

    def end_at(self, t1: float) -> None:
        self._end_at = t1

    def set(self, **attrs: Any) -> None:
        self.span.attrs.update(attrs)

    def __enter__(self) -> "_SpanScope":
        self._tracer._stack.append(self.span)
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self._tracer._stack.pop()
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
            self.span.t1 = self._tracer._now()
        else:
            self.span.t1 = (
                self._end_at if self._end_at is not None else self._tracer._now()
            )
        return False  # never swallow


class _DropScope:
    """Scope for a span suppressed by request sampling.

    Mirrors :class:`_SpanScope`'s surface but records nothing, and
    counts scope depth on its tracer so *synchronous children* created
    inside it (which carry no request id of their own — e.g. the
    transfer a publish performs) are suppressed too instead of being
    recorded as orphan roots.
    """

    __slots__ = ("_tracer",)
    span = None

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def end_at(self, t1: float) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_DropScope":
        self._tracer._drop_depth += 1
        return self

    def __exit__(self, *exc_info) -> bool:
        self._tracer._drop_depth -= 1
        return False


class Tracer:
    """Collects spans against a bound virtual clock.

    ``sample_every=N`` keeps every N-th tracked request (the first,
    then every N-th after it, by ``open_request`` order) and drops all
    spans of the others — root, children, and synchronous descendants
    alike.  Request order is deterministic under the virtual clock, so
    a sampled trace is still byte-identical across same-seed runs;
    control-plane spans (solver, migration) are never sampled away.
    The default ``1`` records everything, preserving existing traces.
    """

    enabled = True

    def __init__(
        self, clock: Optional[VirtualClock] = None, sample_every: int = 1
    ):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self._clock = clock
        self._sample_every = sample_every
        self.spans: List[Span] = []
        self._next_id = 0
        self._stack: List[Span] = []  # synchronous parenting scopes
        self._request_roots: Dict[str, Span] = {}
        self._finalized = False
        self._request_seq = 0
        self._dropped_requests: set = set()
        self._drop_depth = 0
        self._drop_scope = _DropScope(self)

    # -- wiring --------------------------------------------------------------
    def bind_clock(self, clock: VirtualClock) -> None:
        """Attach the simulation's clock (done by ``SimulatedCloud``)."""
        self._clock = clock

    def _now(self) -> float:
        if self._clock is None:
            raise RuntimeError(
                "Tracer is not bound to a clock; pass it to SimulatedCloud "
                "or call bind_clock() first"
            )
        return self._clock.now()

    # -- span creation -------------------------------------------------------
    def _new_span(
        self,
        kind: str,
        name: str,
        t0: Optional[float],
        workflow: str,
        request_id: str,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> Span:
        if parent_id is None:
            if self._stack:
                parent_id = self._stack[-1].span_id
            elif request_id and request_id in self._request_roots:
                parent_id = self._request_roots[request_id].span_id
        span = Span(
            span_id=self._next_id,
            kind=kind,
            name=name,
            t0=self._now() if t0 is None else t0,
            parent_id=parent_id,
            workflow=workflow,
            request_id=request_id,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._finalized = False
        return span

    def _suppressed(self, request_id: str) -> bool:
        return self._drop_depth > 0 or (
            bool(request_id) and request_id in self._dropped_requests
        )

    def record(
        self,
        kind: str,
        name: str,
        *,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        workflow: str = "",
        request_id: str = "",
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Record a closed span in one shot (defaults to a point in
        time).  Returns ``None`` when request sampling drops the span.
        """
        if self._suppressed(request_id):
            return None
        span = self._new_span(kind, name, t0, workflow, request_id, parent_id, attrs)
        span.t1 = t1 if t1 is not None else span.t0
        return span

    def span(
        self,
        kind: str,
        name: str,
        *,
        t0: Optional[float] = None,
        workflow: str = "",
        request_id: str = "",
        parent_id: Optional[int] = None,
        **attrs: Any,
    ):
        """Open a span as a context manager; synchronous children nest.
        Sampled-away requests get a no-op scope that also suppresses
        synchronous descendants."""
        if self._suppressed(request_id):
            return self._drop_scope
        span = self._new_span(kind, name, t0, workflow, request_id, parent_id, attrs)
        return _SpanScope(self, span)

    # -- request lifecycle ----------------------------------------------------
    def open_request(self, request_id: str, workflow: str = "") -> Optional[Span]:
        """Open the root span for a tracked request.

        With sampling active, a request outside the kept stride returns
        ``None`` and every subsequent span carrying its id is dropped.
        """
        self._request_seq += 1
        if (self._request_seq - 1) % self._sample_every != 0:
            self._dropped_requests.add(request_id)
            return None
        span = self._new_span(
            "request", request_id, None, workflow, request_id, None, {}
        )
        self._request_roots[request_id] = span
        return span

    def close_request(self, request_id: str, status: str) -> None:
        """Record the request's terminal state on its root span.

        The root's ``t1`` is still extended over any child that models
        work past this point (a terminal invocation's execution window
        ends after the completion is registered) — see :meth:`finalize`.
        """
        root = self._request_roots.get(request_id)
        if root is None or root.t1 is not None:
            return
        root.t1 = self._now()
        root.attrs["status"] = status

    # -- export ---------------------------------------------------------------
    def finalize(self) -> None:
        """Close open spans and make every parent cover its children.

        Safe to call repeatedly; recording new spans re-arms it.
        Children are always created after their parent, so one reverse
        pass propagates interval ends bottom-up.
        """
        if self._finalized:
            return
        by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        for span in self.spans:
            if span.t1 is None:
                span.t1 = self._now()
                if span.kind == "request" and "status" not in span.attrs:
                    span.attrs["status"] = "pending"
        for span in reversed(self.spans):
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                if parent.t1 is not None and span.t1 > parent.t1:
                    parent.t1 = span.t1
        self._finalized = True

    def to_jsonl(self) -> str:
        """Serialise all spans as JSON Lines, one span per line.

        Sorted keys + compact separators + sequential ids make the
        output byte-identical across same-seed runs.
        """
        self.finalize()
        lines = [
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
            for span in self.spans
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def export(self, destination) -> None:
        """Write the JSONL trace to a path or file object."""
        text = self.to_jsonl()
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w", encoding="utf-8") as fh:
                fh.write(text)

    def request_root(self, request_id: str) -> Optional[Span]:
        return self._request_roots.get(request_id)

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Shares the :class:`Tracer` surface so call sites need no branches
    beyond the ``enabled`` guard they use to skip attribute building.
    """

    enabled = False
    spans: tuple = ()

    class _NullScope:
        __slots__ = ()
        span = None

        def end_at(self, t1: float) -> None:
            pass

        def set(self, **attrs: Any) -> None:
            pass

        def __enter__(self) -> "NullTracer._NullScope":
            return self

        def __exit__(self, *exc_info) -> bool:
            return False

    _SCOPE = _NullScope()

    def bind_clock(self, clock: VirtualClock) -> None:
        pass

    def record(self, kind: str, name: str, **kwargs: Any) -> None:
        return None

    def span(self, kind: str, name: str, **kwargs: Any) -> "NullTracer._NullScope":
        return self._SCOPE

    def open_request(self, request_id: str, workflow: str = "") -> None:
        return None

    def close_request(self, request_id: str, status: str) -> None:
        pass

    def finalize(self) -> None:
        pass

    def to_jsonl(self) -> str:
        return ""

    def export(self, destination) -> None:
        pass

    def request_root(self, request_id: str) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: Shared no-op tracer every service defaults to.
NULL_TRACER = NullTracer()


def iter_children(spans: Iterable[Span], parent_id: int) -> List[Span]:
    """Direct children of ``parent_id``, in creation order."""
    return [s for s in spans if s.parent_id == parent_id]


def write_jsonl(spans: Iterable[Span], fh: TextIO) -> None:
    """Serialise an arbitrary span iterable (offline analysis helper)."""
    for span in spans:
        fh.write(json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":")))
        fh.write("\n")
