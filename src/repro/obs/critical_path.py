"""Critical-path attribution over request span trees (Dapper-style).

Given a trace (live :class:`~repro.obs.trace.Tracer` or reloaded JSONL),
this module answers the question the paper's latency model poses
(§7.1, Eq. 7.3–7.5): *where did this request's end-to-end latency go?*

For each tracked request the analyzer

* reconstructs the request's span tree and sweeps **backwards** through
  virtual time from the request's end: at every point the gating span is
  the latest-finishing piece of work (invocation / publish / transfer /
  kv) whose completion enabled what followed; gaps between gating spans
  are attributed to ``wait`` (delivery overheads, event-loop hand-offs).
  The resulting segments *tile* the request interval exactly, so their
  durations sum to the end-to-end virtual latency by construction;
* attributes each segment to a DAG node (an invocation's ``node`` attr,
  or the destination node of an ``src->dst`` edge label) so latency can
  be read per node as well as per segment kind;
* reports every synchronisation barrier's gating branch from the
  executor's ``sync_gate`` spans — which upstream edge completed the
  invocation condition (Eq. 4.1) last, and how far it straggled behind
  the first arrival — directly validating the paper's §4 join semantics.

Everything here is a pure function of the span list: no clock, no RNG,
no simulation state.  Analysis of the same trace is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import Span, Tracer

#: Span kinds that represent gating work on a request's path.
WORK_KINDS = ("invocation", "publish", "transfer", "kv")

#: Segment kind for un-attributed time (scheduling/delivery hand-offs).
WAIT = "wait"

#: Bucket for segments that cannot be pinned to a DAG node.
FRAMEWORK_NODE = "(framework)"


def _as_spans(source: Union[Tracer, Sequence[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        source.finalize()
        return list(source.spans)
    return list(source)


def node_of_span(span: Span) -> str:
    """Best-effort DAG-node attribution for one work span.

    Invocations carry an explicit ``node`` attr.  Publishes and
    transfers are labelled with the DAG edge they serve (``a->b``,
    ``$input->a``, ``syncload:s``, ``external:n``); the receiving node
    is charged.  KV operations and unlabelled framework traffic fall
    into :data:`FRAMEWORK_NODE`.
    """
    if span.kind == "invocation":
        return str(span.attrs.get("node") or span.name)
    name = span.name
    if "->" in name:
        return name.rsplit("->", 1)[1]
    if name.startswith(("syncload:", "external:")):
        return name.split(":", 1)[1]
    return FRAMEWORK_NODE


@dataclass(frozen=True)
class PathSegment:
    """One tiled slice of a request's end-to-end interval."""

    t0: float
    t1: float
    kind: str  # WORK_KINDS member or "wait"
    name: str
    node: str
    span_id: Optional[int] = None  # None for wait segments

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class SyncGateReport:
    """One sync barrier's join outcome for one request."""

    sync_node: str
    #: The edge annotation that completed the invocation condition.
    gate_edge: str
    #: In-edge -> annotation arrival time (directly annotated edges
    #: only; deadness-propagated edges never arrive on their own).
    arrivals: Dict[str, float]
    #: Virtual time the barrier opened.
    t: float

    @property
    def gate_branch(self) -> str:
        """Source node of the gating edge (the straggling branch)."""
        return self.gate_edge.split("->", 1)[0]

    @property
    def straggle_s(self) -> float:
        """How long the barrier waited between the first arrival and
        the gating one (0.0 when only one edge ever arrived)."""
        if len(self.arrivals) < 2:
            return 0.0
        times = sorted(self.arrivals.values())
        return times[-1] - times[0]


@dataclass
class RequestPath:
    """Critical-path decomposition of one tracked request."""

    request_id: str
    workflow: str
    status: str
    t0: float
    t1: float
    segments: List[PathSegment] = field(default_factory=list)
    sync_gates: List[SyncGateReport] = field(default_factory=list)

    @property
    def latency_s(self) -> float:
        return self.t1 - self.t0

    def by_kind(self) -> Dict[str, float]:
        """Seconds on the critical path per segment kind (incl. wait)."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration_s
        return dict(sorted(out.items()))

    def by_node(self) -> Dict[str, float]:
        """Seconds on the critical path per attributed DAG node."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.node] = out.get(seg.node, 0.0) + seg.duration_s
        return dict(sorted(out.items()))

    def shares(self) -> Dict[str, float]:
        """Fraction of end-to-end latency per kind (sums to 1.0)."""
        total = self.latency_s
        if total <= 0.0:
            return {}
        return {k: v / total for k, v in self.by_kind().items()}


def compute_critical_path(
    source: Union[Tracer, Sequence[Span]], request_id: str
) -> RequestPath:
    """Decompose one request's latency into tiled gating segments.

    Raises ``KeyError`` when the trace has no root span for
    ``request_id``.
    """
    spans = _as_spans(source)
    root: Optional[Span] = None
    work: List[Span] = []
    gates: List[Span] = []
    for span in spans:
        if span.request_id != request_id:
            continue
        if span.kind == "request":
            root = span
        elif span.kind == "sync_gate":
            gates.append(span)
        elif span.kind in WORK_KINDS:
            work.append(span)
    if root is None:
        raise KeyError(f"trace has no request root for {request_id!r}")
    t_end = root.t1 if root.t1 is not None else root.t0

    path = RequestPath(
        request_id=request_id,
        workflow=root.workflow,
        status=str(root.attrs.get("status", "open")),
        t0=root.t0,
        t1=t_end,
        sync_gates=[
            SyncGateReport(
                sync_node=str(g.attrs.get("sync_node", g.name)),
                gate_edge=str(g.attrs.get("gate", "")),
                arrivals=dict(g.attrs.get("arrivals", {})),
                t=g.t0,
            )
            for g in gates
        ],
    )

    # Backward sweep.  ``used`` guards against re-picking zero-length
    # spans that would otherwise stall the cursor.
    segments: List[PathSegment] = []
    used: set = set()
    cursor = t_end
    while cursor > root.t0:
        best: Optional[Span] = None
        for span in work:
            if span.span_id in used:
                continue
            end = span.t1 if span.t1 is not None else span.t0
            if end > cursor or end <= root.t0:
                continue
            if best is None:
                best = span
                continue
            b_end = best.t1 if best.t1 is not None else best.t0
            if (end, span.t0, span.span_id) > (b_end, best.t0, best.span_id):
                best = span
        if best is None:
            segments.append(
                PathSegment(root.t0, cursor, WAIT, WAIT, FRAMEWORK_NODE)
            )
            cursor = root.t0
            break
        used.add(best.span_id)
        b_end = best.t1 if best.t1 is not None else best.t0
        if b_end < cursor:
            segments.append(
                PathSegment(b_end, cursor, WAIT, WAIT, FRAMEWORK_NODE)
            )
            cursor = b_end
        start = max(best.t0, root.t0)
        if start < cursor:
            segments.append(
                PathSegment(
                    start,
                    cursor,
                    best.kind,
                    best.name,
                    node_of_span(best),
                    span_id=best.span_id,
                )
            )
            cursor = start
        # else: zero-length gating span; ``used`` ensures progress.
    segments.reverse()
    path.segments = segments
    return path


@dataclass
class TraceAnalysis:
    """Critical paths of every tracked request in one trace."""

    requests: List[RequestPath]

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    def total_latency_s(self) -> float:
        return sum(r.latency_s for r in self.requests)

    def by_kind(self) -> Dict[str, Dict[str, float]]:
        """Aggregate seconds and share per segment kind across requests."""
        seconds: Dict[str, float] = {}
        for req in self.requests:
            for kind, secs in req.by_kind().items():
                seconds[kind] = seconds.get(kind, 0.0) + secs
        total = self.total_latency_s()
        return {
            kind: {
                "seconds": secs,
                "share": (secs / total) if total > 0 else 0.0,
            }
            for kind, secs in sorted(seconds.items())
        }

    def by_node(self) -> Dict[str, Dict[str, float]]:
        """Aggregate seconds and share per attributed DAG node."""
        seconds: Dict[str, float] = {}
        for req in self.requests:
            for node, secs in req.by_node().items():
                seconds[node] = seconds.get(node, 0.0) + secs
        total = self.total_latency_s()
        return {
            node: {
                "seconds": secs,
                "share": (secs / total) if total > 0 else 0.0,
            }
            for node, secs in sorted(seconds.items())
        }

    def sync_gates(self) -> Dict[str, Dict[str, Any]]:
        """Per sync node: how often each branch gated the barrier, and
        the mean straggle between first and gating arrival."""
        out: Dict[str, Dict[str, Any]] = {}
        for req in self.requests:
            for gate in req.sync_gates:
                entry = out.setdefault(
                    gate.sync_node,
                    {"gated_by": {}, "n": 0, "total_straggle_s": 0.0},
                )
                entry["n"] += 1
                entry["total_straggle_s"] += gate.straggle_s
                by = entry["gated_by"]
                by[gate.gate_edge] = by.get(gate.gate_edge, 0) + 1
        result: Dict[str, Dict[str, Any]] = {}
        for node in sorted(out):
            entry = out[node]
            result[node] = {
                "n": entry["n"],
                "gated_by": dict(sorted(entry["gated_by"].items())),
                "mean_straggle_s": (
                    entry["total_straggle_s"] / entry["n"] if entry["n"] else 0.0
                ),
            }
        return result

    def aggregate(self) -> Dict[str, Any]:
        """Sorted-key JSON-serialisable digest (consumed by RunReport)."""
        latencies = sorted(r.latency_s for r in self.requests)
        mean = (
            sum(latencies) / len(latencies) if latencies else 0.0
        )
        p95 = _percentile(latencies, 0.95)
        return {
            "by_kind": self.by_kind(),
            "by_node": self.by_node(),
            "mean_latency_s": mean,
            "n_requests": self.n_requests,
            "p95_latency_s": p95,
            "sync_gates": self.sync_gates(),
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


def analyze_trace(source: Union[Tracer, Sequence[Span]]) -> TraceAnalysis:
    """Critical-path decomposition of every tracked request, in
    first-seen request order."""
    spans = _as_spans(source)
    order: List[str] = []
    seen: set = set()
    for span in spans:
        if span.kind == "request" and span.request_id not in seen:
            seen.add(span.request_id)
            order.append(span.request_id)
    return TraceAnalysis(
        requests=[compute_critical_path(spans, rid) for rid in order]
    )


def render_critical_path(path: RequestPath, max_segments: int = 50) -> str:
    """Human-readable decomposition of one request."""
    lines = [
        f"request {path.request_id} [{path.status}] "
        f"{path.latency_s:.4f}s end-to-end"
    ]
    shown = path.segments[:max_segments]
    for seg in shown:
        share = (
            seg.duration_s / path.latency_s if path.latency_s > 0 else 0.0
        )
        lines.append(
            f"  {seg.t0:12.3f}..{seg.t1:12.3f}  {seg.duration_s:9.4f}s "
            f"{share:6.1%}  {seg.kind:10s} {seg.name} [{seg.node}]"
        )
    if len(path.segments) > max_segments:
        lines.append(
            f"  ... {len(path.segments) - max_segments} more segments"
        )
    for gate in path.sync_gates:
        lines.append(
            f"  sync {gate.sync_node}: gated by {gate.gate_edge} "
            f"at {gate.t:.3f} (straggle {gate.straggle_s:.4f}s)"
        )
    return "\n".join(lines)
