"""Orchestration baselines for the overhead study (paper §9.6, Fig. 12).

* :class:`SnsOrchestrator` — "basic orchestration via SNS to invoke
  subsequent functions": the same pub/sub chaining Caribou uses, but
  single-region with no deployment-plan machinery (no DP fetch, no DP
  piggybacked on messages).  SNS alone "does not support
  synchronization", so fan-in still goes through the KV store exactly as
  in Caribou — the delta to Caribou isolates the framework's overhead.
* :class:`StepFunctionsOrchestrator` — the first-party centralised
  orchestrator: per-edge state transitions inside one service, central
  (free) synchronisation state, and no per-hop publish/delivery
  overheads, which is why it is the fastest of the three.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.api import ExecutionContext, Payload
from repro.core.executor import (
    HEADER_BYTES,
    CaribouExecutor,
    DeployedWorkflow,
    propagate_dead,
    sync_condition_met,
)
from repro.model.plan import DeploymentPlan


class SnsOrchestrator(CaribouExecutor):
    """Plain SNS function chaining in the home region.

    Reuses the executor machinery with three differences: its own topic
    namespace (so it can coexist with a Caribou deployment of the same
    workflow), messages without the piggybacked DP, and a client that
    never consults the KV store for a plan.
    """

    TOPIC_PREFIX = "sns-baseline"

    def __init__(self, deployed: DeployedWorkflow):
        super().__init__(deployed)
        self._home = deployed.config.home_region

    def setup(self) -> None:
        """Create the baseline's own topics + subscriptions (home only)."""
        for spec in self._d.workflow.functions:
            topic = self._topic_for(spec.name)
            self._cloud.pubsub.create_topic(topic, self._home)
            self._cloud.pubsub.subscribe(
                topic, self._home, self.make_subscriber(spec.name, self._home)
            )

    def invoke(
        self,
        payload: Payload,
        plan: Optional[DeploymentPlan] = None,
        force_home: bool = False,
        request_id: Optional[str] = None,
    ) -> str:
        """Direct invocation: no plan fetch, no benchmarking sampling."""
        self._request_counter += 1
        rid = request_id or f"{self._d.name}-sns-r{self._request_counter:06d}"
        start = self._dag.start_node
        body = {
            "node": start,
            "request_id": rid,
            "plan": dict(self.home_plan().assignments),
            "payloads": [self._encode_payload(payload)],
            "benchmark": False,
        }
        self._publish_to_node(
            node=start,
            body=body,
            payload_bytes=payload.size_bytes,
            source_region=self._home,
            request_id=rid,
            edge_label="",
        )
        return rid

    # -- hooks ------------------------------------------------------------------
    def _topic_for(self, function: str) -> str:
        return f"{self.TOPIC_PREFIX}:{self._d.name}.{function}"

    def _message_bytes(self, payload_bytes: float) -> float:
        return payload_bytes + HEADER_BYTES  # no DP piggyback


class StepFunctionsOrchestrator:
    """Centralised state-machine execution of the same workflow.

    The orchestrator holds all control state in the Step Functions
    service (home region): each edge is a cheap state transition, fan-in
    payloads are buffered centrally, and conditional skips are resolved
    in memory — no pub/sub hops and no KV round trips.
    """

    def __init__(self, deployed: DeployedWorkflow):
        self._d = deployed
        self._dag = deployed.dag
        self._wf = deployed.workflow
        self._cloud = deployed.cloud
        self._home = deployed.config.home_region
        self._sf = deployed.cloud.stepfunctions(self._home)
        self._topo = self._dag.topological_order()
        from repro.core.executor import annotation_class_edges

        self._annotated = annotation_class_edges(self._dag)
        self._spec_of_node = {
            n.name: self._wf.function(n.function) for n in self._dag.nodes
        }
        self._request_counter = 0
        # Per-execution central state: annotations + buffered sync data.
        self._ann: Dict[str, Dict] = {}
        self._sync_buffers: Dict[str, Dict[str, List[Payload]]] = {}

    def invoke(self, payload: Payload, request_id: Optional[str] = None) -> str:
        self._request_counter += 1
        rid = request_id or f"{self._d.name}-sf-r{self._request_counter:06d}"
        self._sf.start_execution(rid)
        self._ann[rid] = {}
        self._sync_buffers[rid] = {}
        delay = self._sf.transition_delay()
        self._cloud.env.schedule(
            delay, lambda: self._run_node(self._dag.start_node, [payload], rid)
        )
        return rid

    # -- internals --------------------------------------------------------------
    def _run_node(self, node: str, payloads: List[Payload], rid: str) -> None:
        spec = self._spec_of_node[node]
        input_bytes = sum(p.size_bytes for p in payloads)

        # Fixed external data reads (same fairness rule as Caribou).
        if spec.external_data is not None:
            self._cloud.network.transfer(
                spec.external_data.region,
                self._home,
                spec.external_data.size_bytes,
                workflow=self._d.name,
                request_id=rid,
                kind="data",
                edge=f"external:{node}",
            )

        ctx = ExecutionContext(node=node, request_id=rid, predecessor_data=payloads)

        def wrapped(event: Any, faas_ctx) -> Any:
            self._wf.push_context(ctx)
            try:
                spec.handler(event)
            finally:
                self._wf.pop_context()
            self._cloud.env.schedule_at(
                faas_ctx.end_s, lambda: self._process_intents(ctx, node, rid)
            )
            total_out = sum(i.payload.size_bytes for i in ctx.intents)
            return Payload(content=None, size_bytes=total_out)

        event = payloads[0].content if payloads else None
        if self._dag.is_sync_node(node):
            event = None
        self._cloud.functions.invoke(
            workflow=self._d.name,
            function=spec.name,
            region=self._home,
            body=event,
            payload_bytes=input_bytes,
            node=node,
            request_id=rid,
            handler_override=wrapped,
        )

    def _process_intents(self, ctx: ExecutionContext, node: str, rid: str) -> None:
        covered: set = set()
        for intent in ctx.intents:
            spec = self._wf.function(intent.target_function)
            if spec.max_instances == 1:
                dst = spec.name
            else:
                dst = f"{spec.name}:{intent.call_index}"
            covered.add(dst)
            if not intent.conditional_value:
                self._mark_skip(node, dst, rid)
            else:
                self._route(node, dst, intent.payload, rid)
        for edge in self._dag.out_edges(node):
            if edge.dst not in covered:
                self._mark_skip(node, edge.dst, rid)

    def _route(self, src: str, dst: str, payload: Payload, rid: str) -> None:
        # Payload passes through the orchestrator: one intra-region hop.
        transfer = self._cloud.network.transfer(
            self._home,
            self._home,
            payload.size_bytes,
            workflow=self._d.name,
            request_id=rid,
            kind="data",
            edge=f"{src}->{dst}",
        )
        delay = transfer.latency_s + self._sf.transition_delay()
        ann = self._ann[rid]
        if self._dag.is_sync_node(dst):
            self._sync_buffers[rid].setdefault(dst, []).append(payload)
            self._sf.record_arrival(rid, dst)
            if (src, dst) in self._annotated:
                ann[f"{src}->{dst}"] = 1
            self._check_sync(dst, rid, delay)
        else:
            if (src, dst) in self._annotated:
                ann[f"{src}->{dst}"] = 1
            self._cloud.env.schedule(
                delay, lambda: self._run_node(dst, [payload], rid)
            )

    def _mark_skip(self, src: str, dst: str, rid: str) -> None:
        if (src, dst) not in self._annotated:
            return
        ann = self._ann[rid]
        ann[f"{src}->{dst}"] = 0
        propagate_dead(self._dag, self._annotated, ann, self._topo)
        for sync_node in self._dag.sync_nodes:
            self._check_sync(sync_node, rid, self._sf.transition_delay())

    def _check_sync(self, sync_node: str, rid: str, delay: float) -> None:
        ann = self._ann[rid]
        flag = f"__invoked__:{sync_node}"
        if ann.get(flag):
            return
        if sync_condition_met(self._dag, ann, sync_node):
            ann[flag] = True
            payloads = self._sync_buffers[rid].get(sync_node, [])
            self._cloud.env.schedule(
                delay, lambda: self._run_node(sync_node, payloads, rid)
            )
