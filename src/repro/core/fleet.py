"""Fleet management: the DM loop over *all* deployed workflows.

Fig. 6's Deployment Manager "regularly iterates over all deployed
workflows", each with its own token bucket, metrics, and check cadence.
:class:`FleetManager` is that outer loop: it registers per-workflow
:class:`~repro.core.manager.DeploymentManager` instances and runs one
self-rescheduling check chain per workflow, so a busy workflow is
checked hourly while an idle one backs off to the daily cadence —
independently, exactly as the sigmoid rule dictates per bucket.

At fleet scale the managers stop being islands.  Three resources are
shared across every registered workflow:

* **Evaluation cache** — one
  :class:`~repro.core.solver.SharedEvaluationCache` whose per-workflow
  scopes keep Monte-Carlo results correct (digests hash plan content,
  not learned metrics) while accounting rolls up fleet-wide.
* **Carbon forecasts** — one
  :class:`~repro.metrics.manager.CarbonForecastProvider`; forecasts are
  per grid region, so the first manager to check each day pays for the
  Holt-Winters refit and the other N-1 reuse it.
* **Metrics registry** — the cloud's
  :class:`~repro.obs.metrics.MetricsRegistry` already spans workflows;
  :meth:`fleet_report` snapshots it alongside the cache and forecast
  counters so one document describes the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cloud.provider import SimulatedCloud
from repro.core.deployer import DeploymentUtility
from repro.core.executor import CaribouExecutor, DeployedWorkflow
from repro.core.manager import CheckReport, DeploymentManager
from repro.core.solver import SharedEvaluationCache, SolverSettings
from repro.core.trigger import TriggerSettings
from repro.metrics.carbon import TransmissionScenario
from repro.metrics.manager import CarbonForecastProvider


@dataclass
class FleetEntry:
    """One managed workflow and its control loop."""

    deployed: DeployedWorkflow
    executor: CaribouExecutor
    manager: DeploymentManager


class FleetManager:
    """Runs the Fig. 6 loop for every registered workflow."""

    def __init__(
        self,
        cloud: SimulatedCloud,
        utility: DeploymentUtility,
        scenario: TransmissionScenario,
        solver_settings: SolverSettings = SolverSettings(),
        trigger_settings: TriggerSettings = TriggerSettings(),
        use_forecast: bool = True,
        use_token_bucket: bool = True,
        fixed_granularity: int = 24,
    ):
        self._cloud = cloud
        self._utility = utility
        self._scenario = scenario
        self._solver_settings = solver_settings
        self._trigger_settings = trigger_settings
        self._use_forecast = use_forecast
        self._use_token_bucket = use_token_bucket
        self._fixed_granularity = fixed_granularity
        self._entries: Dict[str, FleetEntry] = {}
        #: Fleet-shared solver cache; each manager solves against its
        #: own scope (see SharedEvaluationCache for why not one flat map).
        self.evaluation_cache = SharedEvaluationCache()
        #: Fleet-shared daily forecasts (per grid region, fit once).
        self.forecasts = CarbonForecastProvider(cloud.carbon_source)

    # -- registry ---------------------------------------------------------------
    def register(
        self, deployed: DeployedWorkflow, executor: CaribouExecutor
    ) -> DeploymentManager:
        """Bring a deployed workflow under fleet management."""
        if deployed.name in self._entries:
            raise ValueError(f"workflow {deployed.name!r} is already managed")
        manager = DeploymentManager(
            deployed,
            executor,
            self._utility,
            scenario=self._scenario,
            solver_settings=self._solver_settings,
            trigger_settings=self._trigger_settings,
            use_forecast=self._use_forecast,
            use_token_bucket=self._use_token_bucket,
            fixed_granularity=self._fixed_granularity,
            forecasts=self.forecasts,
            evaluation_cache=self.evaluation_cache.scope(deployed.name),
        )
        self._entries[deployed.name] = FleetEntry(
            deployed=deployed, executor=executor, manager=manager
        )
        return manager

    def unregister(self, workflow_name: str) -> None:
        """Remove a workflow from fleet management.

        Stops the manager's pending check chain *before* dropping its
        cache scope (an armed ``run_for`` chain would otherwise keep
        solving into an orphaned scope), and raises :class:`KeyError`
        for unknown workflows — matching :meth:`manager_for` — so
        service-layer cancel paths cannot mask typo'd names.
        """
        try:
            entry = self._entries.pop(workflow_name)
        except KeyError:
            raise KeyError(
                f"workflow {workflow_name!r} is not fleet-managed"
            ) from None
        entry.manager.stop()
        self.evaluation_cache.drop_scope(workflow_name)

    @property
    def workflows(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def manager_for(self, workflow_name: str) -> DeploymentManager:
        try:
            return self._entries[workflow_name].manager
        except KeyError:
            raise KeyError(
                f"workflow {workflow_name!r} is not fleet-managed"
            ) from None

    # -- operation ----------------------------------------------------------------
    def check_all(self) -> Dict[str, CheckReport]:
        """One immediate check pass over every workflow (Fig. 6's
        "iterates over all deployed workflows")."""
        return {
            name: entry.manager.check() for name, entry in self._entries.items()
        }

    def run_for(
        self, duration_s: float, stagger_s: float = 60.0
    ) -> None:
        """Schedule each workflow's self-rescheduling check chain.

        ``stagger_s`` offsets the first checks so simultaneous solves do
        not pile up at t=0 — the same reason the real framework spreads
        workflow processing across its periodic sweep.  Offsets wrap
        within the horizon: with hundreds of workflows a raw
        ``index * stagger_s`` would push tail workflows' first check
        past ``duration_s`` and they would never be checked at all.
        """
        if duration_s <= 0:
            return
        for index, entry in enumerate(self._entries.values()):
            entry.manager.run_for(
                duration_s, first_check_delay_s=(index * stagger_s) % duration_s
            )

    # -- reporting ------------------------------------------------------------------
    def summary(self) -> List[Tuple[str, int, int, float]]:
        """(workflow, checks, solves, tokens) per managed workflow."""
        out = []
        for name, entry in self._entries.items():
            manager = entry.manager
            out.append(
                (
                    name,
                    len(manager.reports),
                    len(manager.plan_history),
                    manager.bucket.tokens_g,
                )
            )
        return out

    def fleet_report(self) -> Dict[str, Any]:
        """Fleet-level rollup for the run report's ``fleet`` section.

        Deterministic (no wall-clock values): counters here derive from
        virtual-time control activity only, so reports embedding this
        stay byte-stable across machines.  Alongside the fleet totals,
        ``per_workflow`` breaks the control-loop activity down by
        workflow name (sorted), giving telemetry and the ``caribou
        fleet-report`` CLI a per-workflow label dimension.
        """
        checks = solves = migrations = 0
        invocations = 0
        per_workflow: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._entries):
            manager = self._entries[name].manager
            wf_checks = len(manager.reports)
            wf_solves = sum(1 for r in manager.reports if r.solved)
            wf_migrations = sum(
                1
                for r in manager.reports
                if r.migration is not None and r.migration.activated
            )
            wf_invocations = sum(
                r.invocations_in_period for r in manager.reports
            )
            checks += wf_checks
            solves += wf_solves
            migrations += wf_migrations
            invocations += wf_invocations
            per_workflow[name] = {
                "checks": wf_checks,
                "invocations_observed": wf_invocations,
                "migrations": wf_migrations,
                "solves": wf_solves,
                "tokens_g": manager.bucket.tokens_g,
            }
        return {
            "cache_estimates": self.evaluation_cache.estimates_cached,
            "cache_invalidations": self.evaluation_cache.invalidations,
            "cache_profiles": self.evaluation_cache.profiles_cached,
            "cache_scopes": self.evaluation_cache.scopes,
            "checks": checks,
            "forecast_version": self.forecasts.version,
            "invocations_observed": invocations,
            "migrations": migrations,
            "per_workflow": per_workflow,
            "solves": solves,
            "workflows": len(self._entries),
        }
