"""Fleet management: the DM loop over *all* deployed workflows.

Fig. 6's Deployment Manager "regularly iterates over all deployed
workflows", each with its own token bucket, metrics, and check cadence.
:class:`FleetManager` is that outer loop: it registers per-workflow
:class:`~repro.core.manager.DeploymentManager` instances and runs one
self-rescheduling check chain per workflow, so a busy workflow is
checked hourly while an idle one backs off to the daily cadence —
independently, exactly as the sigmoid rule dictates per bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cloud.provider import SimulatedCloud
from repro.core.deployer import DeploymentUtility
from repro.core.executor import CaribouExecutor, DeployedWorkflow
from repro.core.manager import CheckReport, DeploymentManager
from repro.core.solver import SolverSettings
from repro.core.trigger import TriggerSettings
from repro.metrics.carbon import TransmissionScenario


@dataclass
class FleetEntry:
    """One managed workflow and its control loop."""

    deployed: DeployedWorkflow
    executor: CaribouExecutor
    manager: DeploymentManager


class FleetManager:
    """Runs the Fig. 6 loop for every registered workflow."""

    def __init__(
        self,
        cloud: SimulatedCloud,
        utility: DeploymentUtility,
        scenario: TransmissionScenario,
        solver_settings: SolverSettings = SolverSettings(),
        trigger_settings: TriggerSettings = TriggerSettings(),
        use_forecast: bool = True,
    ):
        self._cloud = cloud
        self._utility = utility
        self._scenario = scenario
        self._solver_settings = solver_settings
        self._trigger_settings = trigger_settings
        self._use_forecast = use_forecast
        self._entries: Dict[str, FleetEntry] = {}

    # -- registry ---------------------------------------------------------------
    def register(
        self, deployed: DeployedWorkflow, executor: CaribouExecutor
    ) -> DeploymentManager:
        """Bring a deployed workflow under fleet management."""
        if deployed.name in self._entries:
            raise ValueError(f"workflow {deployed.name!r} is already managed")
        manager = DeploymentManager(
            deployed,
            executor,
            self._utility,
            scenario=self._scenario,
            solver_settings=self._solver_settings,
            trigger_settings=self._trigger_settings,
            use_forecast=self._use_forecast,
        )
        self._entries[deployed.name] = FleetEntry(
            deployed=deployed, executor=executor, manager=manager
        )
        return manager

    def unregister(self, workflow_name: str) -> None:
        self._entries.pop(workflow_name, None)

    @property
    def workflows(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    def manager_for(self, workflow_name: str) -> DeploymentManager:
        try:
            return self._entries[workflow_name].manager
        except KeyError:
            raise KeyError(
                f"workflow {workflow_name!r} is not fleet-managed"
            ) from None

    # -- operation ----------------------------------------------------------------
    def check_all(self) -> Dict[str, CheckReport]:
        """One immediate check pass over every workflow (Fig. 6's
        "iterates over all deployed workflows")."""
        return {
            name: entry.manager.check() for name, entry in self._entries.items()
        }

    def run_for(
        self, duration_s: float, stagger_s: float = 60.0
    ) -> None:
        """Schedule each workflow's self-rescheduling check chain.

        ``stagger_s`` offsets the first checks so simultaneous solves do
        not pile up at t=0 — the same reason the real framework spreads
        workflow processing across its periodic sweep.
        """
        for index, entry in enumerate(self._entries.values()):
            entry.manager.run_for(
                duration_s, first_check_delay_s=index * stagger_s
            )

    # -- reporting ------------------------------------------------------------------
    def summary(self) -> List[Tuple[str, int, int, float]]:
        """(workflow, checks, solves, tokens) per managed workflow."""
        out = []
        for name, entry in self._entries.items():
            manager = entry.manager
            out.append(
                (
                    name,
                    len(manager.reports),
                    len(manager.plan_history),
                    manager.bucket.tokens_g,
                )
            )
        return out
