"""The Deployment Manager (DM) — the self-adaptive control loop of
Fig. 6 (paper §5.2).

On every *token check* the DM: collects workflow metrics, refreshes the
daily carbon forecast, earns tokens from the past period's invocations
(and realised savings), expires stale plans, and — when the bucket
covers the solve cost — generates a new plan set at the affordable
granularity (24 hourly plans, degrading to a single daily plan on a
tight budget), migrates it, and finally schedules the next check via the
sigmoid-smoothed cadence rule.

A *fixed-frequency* mode disables the token bucket (used by the §9.7
sensitivity study, Fig. 13) and solves unconditionally at every check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.simulator import EventHandle
from repro.core.executor import CaribouExecutor, DeployedWorkflow
from repro.core.deployer import DeploymentUtility
from repro.core.migrator import DeploymentMigrator, MigrationReport
from repro.core.solver import (
    EvaluationCache,
    HBSSSolver,
    PlanEvaluator,
    SolverSettings,
    SolverStats,
)
from repro.core.trigger import TokenBucket, TriggerSettings
from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.manager import CarbonForecastProvider, MetricsManager
from repro.model.plan import HourlyPlanSet

#: How long a generated plan set stays valid before traffic falls back
#: to the home region (§5.2 "DPs expire to account for the dynamic
#: factors influencing optimality").
DEFAULT_PLAN_LIFETIME_S = 3 * SECONDS_PER_DAY


@dataclass
class CheckReport:
    """What one DM token check did (Fig. 6's decision trace).

    ``solve_cost_g`` is the cost actually *charged* to the bucket this
    check — zero when no token-funded solve happened, and the
    granularity-1 price when the budget only covered a daily solve
    (previously it always reported the 24-hour price regardless of what
    was consumed).  ``solve_cost_quote_g`` is the full 24-hour quote at
    the current framework intensity — the deficit reference the cadence
    rule compares the bucket against.
    """

    time_s: float
    new_records: int
    invocations_in_period: int
    tokens_g: float
    solve_cost_g: float
    solved: bool
    granularity: Optional[int]
    migration: Optional[MigrationReport]
    next_check_delay_s: float
    solve_cost_quote_g: float = 0.0


class DeploymentManager:
    """Drives metric collection, solving, and migration for one workflow."""

    def __init__(
        self,
        deployed: DeployedWorkflow,
        executor: CaribouExecutor,
        utility: DeploymentUtility,
        scenario: TransmissionScenario,
        solver_settings: SolverSettings = SolverSettings(),
        trigger_settings: TriggerSettings = TriggerSettings(),
        plan_lifetime_s: float = DEFAULT_PLAN_LIFETIME_S,
        use_token_bucket: bool = True,
        use_forecast: bool = True,
        fixed_granularity: int = 24,
        forecasts: Optional[CarbonForecastProvider] = None,
        evaluation_cache: Optional[EvaluationCache] = None,
    ):
        self._d = deployed
        self._executor = executor
        self._cloud = deployed.cloud
        self._scenario = scenario
        self._solver_settings = solver_settings
        self._plan_lifetime = plan_lifetime_s
        self._use_token_bucket = use_token_bucket
        self._use_forecast = use_forecast
        if not 1 <= fixed_granularity <= 24:
            raise ValueError(
                f"fixed_granularity must be in [1, 24], got {fixed_granularity}"
            )
        #: Plans per day solved in fixed-frequency mode (Fig. 13's
        #: sensitivity axis; also lets a fleet bench bound per-check
        #: solver work without the token bucket in the way).
        self._fixed_granularity = fixed_granularity

        self.metrics = MetricsManager(
            deployed.dag,
            deployed.config,
            self._cloud.ledger,
            self._cloud.carbon_source,
            forecasts=forecasts,
        )
        for spec in deployed.workflow.functions:
            if spec.external_data is not None:
                for node in deployed.dag.node_names:
                    if deployed.dag.node(node).function == spec.name:
                        self.metrics.declare_external_data(
                            node, spec.external_data.region, spec.external_data.size_bytes
                        )

        self.bucket = TokenBucket(
            n_nodes=len(deployed.dag),
            n_regions=len(self._cloud.regions),
            settings=trigger_settings,
        )
        self.migrator = DeploymentMigrator(utility, deployed, executor)
        self._carbon_model = CarbonModel(scenario)
        self._cost_model = CostModel(self._cloud.pricing_source)
        self._latency_model = TransferLatencyModel(self._cloud.latency_source)
        self._accountant = CarbonAccountant(
            self._cloud.carbon_source, self._carbon_model, self._cost_model
        )
        self._rng = self._cloud.env.rng.get(f"solver:{deployed.name}")
        # Earn window opens at registration, not at t=0: a workflow
        # brought under management late must not earn over the whole
        # pre-registration history (that diluted the first-period earn
        # rate and pushed the next check to max_check_period_s).
        self._last_check_s: float = self._cloud.now()
        self._last_forecast_day: int = -1
        #: Pending self-rescheduled check (run_for's chain); retained so
        #: stop()/unregister can cancel it instead of letting armed
        #: checks keep solving into a dropped cache scope.
        self._pending_check: Optional["EventHandle"] = None
        self.reports: List[CheckReport] = []
        self.plan_history: List[Tuple[float, HourlyPlanSet]] = []
        #: Profile/estimate cache surviving across check() cycles;
        #: make_evaluator() syncs it against the learned-input versions
        #: so stale entries are dropped exactly when metrics/forecasts
        #: actually changed (§5.2 checks often re-solve a barely-moved
        #: problem — discarding the cache each time wasted most of the
        #: previous solve's Monte-Carlo work).  A fleet passes each
        #: manager its scope of a
        #: :class:`~repro.core.solver.SharedEvaluationCache` here.
        self.evaluation_cache = (
            evaluation_cache if evaluation_cache is not None else EvaluationCache()
        )
        #: Cumulative solver counters across this manager's lifetime.
        self.solver_stats = SolverStats()
        # §5.2: a token is "the carbon intensity differential between
        # target regions" — the cleanest *permitted* region, not the
        # cleanest region in the provider.  Intersect per-node
        # compliance so restricted workflows cannot earn against a
        # region none of their functions may run in.
        per_node = [
            set(
                deployed.config.permitted_regions_for_function(
                    deployed.dag.node(node).function, self._cloud.regions
                )
            )
            for node in deployed.dag.node_names
        ]
        earn_regions = set.intersection(*per_node) if per_node else set()
        if not earn_regions:
            # No region runs the whole workflow: fall back to regions
            # that can host at least one node (partial offloading still
            # saves carbon); the evaluator rejects truly empty domains.
            earn_regions = set.union(*per_node) if per_node else set()
        self._earn_regions: Tuple[str, ...] = (
            tuple(sorted(earn_regions)) or tuple(self._cloud.regions)
        )

    # -- components on demand -----------------------------------------------------
    def make_evaluator(self) -> PlanEvaluator:
        """An evaluator over the *current* learned metrics, backed by
        the persistent evaluation cache (invalidated here iff the
        metrics or forecasts changed since the last solve)."""
        self.evaluation_cache.sync(
            self.metrics.version,
            # Forecast refits only stale the cache when forecasts
            # actually feed the intensity function.
            self.metrics.forecasts.version if self._use_forecast else None,
        )
        return PlanEvaluator(
            dag=self._d.dag,
            config=self._d.config,
            data=self.metrics,
            regions=self._cloud.regions,
            intensity_fn=lambda region, hour: self.metrics.carbon_for_hour(
                region, hour, use_forecast=self._use_forecast
            ),
            carbon_model=self._carbon_model,
            cost_model=self._cost_model,
            latency_model=self._latency_model,
            rng=self._rng,
            kv_region=self._d.kv_region,
            settings=self._solver_settings,
            stats=self.solver_stats,
            cache=self.evaluation_cache,
        )

    # -- the Fig. 6 loop ----------------------------------------------------------
    def check(self) -> CheckReport:
        """Run one token check cycle (Fig. 6)."""
        now = self._cloud.now()
        new_records = self.metrics.collect(now)
        self._maybe_refit_forecasts(now)
        framework_intensity = self._cloud.carbon_source.intensity_at(
            self._d.kv_region, now
        )

        # Expire a stale plan: traffic reverts to the home region (§5.2).
        active, _ = self._d.kv().get(
            self._d.meta_table, "active_plan", caller_region=self._d.kv_region,
            workflow=self._d.name,
        )
        if active is not None and HourlyPlanSet.from_dict(active).is_expired(now):
            self._executor.clear_plan()

        # Earn tokens from the past period (sliding window), starting
        # at registration time for the first check.
        period_start = self._last_check_s
        period = max(1.0, now - period_start)
        invocations = self.metrics.invocations_since(period_start)
        avg_runtime = self.metrics.average_runtime_s(period_start)
        avg_memory = float(
            np.mean([n.memory_mb for n in self._d.dag.nodes])
        )
        home_i = self._cloud.carbon_source.intensity_at(
            self._d.config.home_region, now
        )
        # Cleanest *permitted* region (§5.2): earning against a region
        # the workflow may not run in would overfill the bucket and
        # trigger solves that cannot realise the promised differential.
        best_i = min(
            self._cloud.carbon_source.intensity_at(r, now)
            for r in self._earn_regions
        )
        realized = self._realized_savings(period_start, now)
        self.bucket.earn(
            invocations=invocations,
            avg_runtime_s=avg_runtime,
            avg_memory_mb=avg_memory,
            home_intensity=home_i,
            best_intensity=best_i,
            period_s=period,
            realized_saving_g=realized,
        )

        # Decide whether (and at what granularity) to solve.
        solved = False
        granularity: Optional[int] = None
        migration: Optional[MigrationReport] = None
        charged_g = 0.0
        can_model = invocations > 0 or self.metrics.invocation_count > 0
        if can_model:
            if self._use_token_bucket:
                granularity = self.bucket.affordable_granularity(framework_intensity)
                if granularity is not None:
                    charged_g = self.bucket.consume(
                        framework_intensity, granularity
                    )
                    migration = self._solve_and_migrate(granularity, now)
                    solved = True
            else:
                granularity = self._fixed_granularity
                migration = self._solve_and_migrate(granularity, now)
                solved = True
        if not solved:
            # Keep retrying any parked rollout (§6.1).
            migration = self.migrator.retry_pending()

        delay = self.bucket.next_check_delay_s(framework_intensity)
        report = CheckReport(
            time_s=now,
            new_records=new_records,
            invocations_in_period=invocations,
            tokens_g=self.bucket.tokens_g,
            solve_cost_g=charged_g,
            solved=solved,
            granularity=granularity,
            migration=migration,
            next_check_delay_s=delay,
            solve_cost_quote_g=self.bucket.solve_cost_g(
                framework_intensity, 24
            ),
        )
        self.reports.append(report)
        self._last_check_s = now
        return report

    def solve_now(self, granularity_hours: int = 24) -> MigrationReport:
        """Force one solve+migrate regardless of tokens (Fig. 13 mode)."""
        now = self._cloud.now()
        self.metrics.collect(now)
        self._maybe_refit_forecasts(now)
        return self._solve_and_migrate(granularity_hours, now)

    def run_for(self, duration_s: float, first_check_delay_s: float = 0.0) -> None:
        """Schedule self-rescheduling checks over ``duration_s`` of
        virtual time.  The caller advances the simulation.

        The pending link of the chain is retained in
        ``self._pending_check`` so :meth:`stop` (and through it
        ``FleetManager.unregister``) can cancel the loop; without that
        handle an unregistered workflow's armed checks kept firing —
        solving, migrating, and writing into a dropped cache scope —
        for the rest of the horizon.
        """
        horizon = self._cloud.now() + duration_s

        def do_check() -> None:
            report = self.check()
            next_time = self._cloud.now() + report.next_check_delay_s
            if next_time < horizon:
                self._pending_check = self._cloud.env.schedule_at(
                    next_time, do_check
                )
            else:
                self._pending_check = None

        self._pending_check = self._cloud.env.schedule(
            first_check_delay_s, do_check
        )

    def stop(self) -> bool:
        """Cancel the pending :meth:`run_for` check chain, if any.

        Returns True when a pending check was actually cancelled.
        Idempotent; safe to call on a manager that never ran."""
        handle = self._pending_check
        self._pending_check = None
        if handle is None:
            return False
        return handle.cancel()

    # -- internals ---------------------------------------------------------------
    def _solve_and_migrate(
        self, granularity_hours: int, now: float
    ) -> MigrationReport:
        evaluator = self.make_evaluator()
        # Per-hour registry substreams (``solver:{wf}:hour={h}``) keep
        # each hour's walk reproducible whatever order — or thread —
        # solves it in, and persistent across checks.
        registry = self._cloud.env.rng
        name = self._d.name
        solver = HBSSSolver(
            evaluator,
            self._rng,
            tracer=self._cloud.tracer,
            metrics=self._cloud.metrics,
            rng_factory=lambda h: registry.get(f"solver:{name}:hour={h}"),
        )
        if granularity_hours >= 24:
            hours: Sequence[int] = range(24)
        else:
            current_hour = int(now // SECONDS_PER_HOUR) % 24
            step = 24 // granularity_hours
            hours = [(current_hour + i * step) % 24 for i in range(granularity_hours)]
        warm_start = self.plan_history[-1][1] if self.plan_history else None
        plan_set, _results = solver.solve_day(hours, warm_start=warm_start)
        plan_set.created_at_s = now
        plan_set.expires_at_s = now + self._plan_lifetime
        self.plan_history.append((now, plan_set))
        return self.migrator.migrate(plan_set)

    def _maybe_refit_forecasts(self, now: float) -> None:
        """Daily Holt-Winters refit over the past week (§7.2)."""
        if not self._use_forecast:
            return
        day = int(now // SECONDS_PER_DAY)
        if day == self._last_forecast_day:
            return
        now_hour = int(now // SECONDS_PER_HOUR)
        for region in self._cloud.regions:
            # maybe_refit dedups same-day fits, so when the provider is
            # shared across a fleet only the first manager to check each
            # day pays for the Holt-Winters grid search per region.
            self.metrics.forecasts.maybe_refit(region, now_hour)
        self._last_forecast_day = day

    def _realized_savings(self, since_s: float, until_s: float) -> float:
        """Measured carbon saved vs the home baseline over a period.

        Uses the 10 % benchmarking traffic (§6.2) as the home baseline:
        mean per-invocation carbon of home-routed requests minus that of
        plan-routed requests, scaled to the period's plan-routed volume.
        """
        ledger = self._cloud.ledger
        home_region = self._d.config.home_region
        footprints = self._accountant.price_by_request(
            ledger, self._d.name, since_s=since_s, until_s=until_s
        )
        if not footprints:
            return 0.0
        # Classify each invocation by where its executions ran (one
        # ledger pass; matches the footprint grouping above).
        regions_by_rid: Dict[str, set] = {}
        for rec in ledger.executions:
            if rec.workflow == self._d.name and since_s <= rec.start_s < until_s:
                regions_by_rid.setdefault(rec.request_id, set()).add(rec.region)
        home_carbons: List[float] = []
        routed_carbons: List[float] = []
        for rid, fp in footprints.items():
            regions = regions_by_rid.get(rid)
            if not regions:
                continue
            if regions == {home_region}:
                home_carbons.append(fp.carbon_g)
            else:
                routed_carbons.append(fp.carbon_g)
        if not home_carbons or not routed_carbons:
            return 0.0
        saving_per_inv = float(np.mean(home_carbons) - np.mean(routed_carbons))
        return max(0.0, saving_per_inv * len(routed_carbons))
