"""The developer API of the ``caribou`` package (paper §8, Listing 1).

A workflow is declared by instantiating :class:`Workflow` and decorating
handlers with :meth:`Workflow.serverless_function`.  Inside a handler,
:meth:`Workflow.invoke_serverless_function` corresponds to a DAG edge and
:meth:`Workflow.get_predecessor_data` marks (and serves) a
synchronisation node.  No deployment or region logic appears in user
code — the whole point of the framework (§6.2: "No new DP should
necessitate changing the source code").

At runtime the same object doubles as the interception point: the
function wrapper pushes an execution context before calling the user
handler, and the API methods record invocation intents against it for
the wrapper to route after the stage completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cloud.functions import WorkProfile
from repro.common.errors import WorkflowDefinitionError
from repro.model.config import FunctionConstraints


@dataclass
class Payload:
    """Intermediate data passed between stages.

    The simulator never copies real megabytes: ``content`` is a small
    Python value for application logic and ``size_bytes`` is the logical
    size driving latency/cost/carbon.
    """

    content: Any = None
    size_bytes: float = 1024.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {self.size_bytes}")


@dataclass(frozen=True)
class ExternalDataSpec:
    """A fixed external data dependency of a function (§9.1 rule 1)."""

    region: str
    size_bytes: float


@dataclass
class FunctionSpec:
    """Everything the framework records about one registered function."""

    name: str
    handler: Callable[[Any], Any]
    constraints: Optional[FunctionConstraints] = None
    memory_mb: int = 1769
    profile: WorkProfile = field(default_factory=lambda: WorkProfile(base_seconds=0.5))
    entry_point: bool = False
    max_instances: int = 1
    external_data: Optional[ExternalDataSpec] = None

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise WorkflowDefinitionError(
                f"function {self.name!r}: memory_mb must be positive"
            )
        if self.max_instances < 1:
            raise WorkflowDefinitionError(
                f"function {self.name!r}: max_instances must be >= 1"
            )


@dataclass
class InvocationIntent:
    """One ``invoke_serverless_function`` call captured at runtime."""

    target_function: str
    payload: Payload
    conditional_value: bool
    call_index: int  # per-target ordinal, maps fan-out calls to stages


@dataclass
class ExecutionContext:
    """Per-stage runtime context the wrapper pushes around user code."""

    node: str
    request_id: str
    predecessor_data: List[Payload] = field(default_factory=list)
    intents: List[InvocationIntent] = field(default_factory=list)
    used_get_predecessor_data: bool = False
    _per_target_counts: Dict[str, int] = field(default_factory=dict)

    def record_intent(
        self, target_function: str, payload: Payload, conditional_value: bool
    ) -> None:
        idx = self._per_target_counts.get(target_function, 0)
        self._per_target_counts[target_function] = idx + 1
        self.intents.append(
            InvocationIntent(
                target_function=target_function,
                payload=payload,
                conditional_value=conditional_value,
                call_index=idx,
            )
        )


def _resolve_function_name(function: Any) -> str:
    """Accept a registered handler, a FunctionSpec, or a plain name."""
    if isinstance(function, str):
        return function
    spec = getattr(function, "_caribou_spec", None)
    if spec is not None:
        return spec.name
    if isinstance(function, FunctionSpec):
        return function.name
    raise WorkflowDefinitionError(
        f"cannot resolve {function!r} to a registered serverless function"
    )


class Workflow:
    """Developer-facing workflow declaration object (Listing 1)."""

    def __init__(self, name: str, version: str = "0.1"):
        if not name:
            raise WorkflowDefinitionError("workflow name must be non-empty")
        self.name = name
        self.version = version
        self._functions: Dict[str, FunctionSpec] = {}
        self._ctx_stack: List[ExecutionContext] = []

    # -- declaration ---------------------------------------------------------
    def serverless_function(
        self,
        name: Optional[str] = None,
        regions_and_providers: Optional[Mapping[str, Sequence[Mapping[str, str]]]] = None,
        memory_mb: int = 1769,
        profile: Optional[WorkProfile] = None,
        entry_point: bool = False,
        max_instances: int = 1,
        external_data: Optional[ExternalDataSpec] = None,
    ) -> Callable[[Callable[[Any], Any]], Callable[[Any], Any]]:
        """Register a function handler (Listing 1, lines 3-6).

        Args:
            name: Stage name; defaults to the handler's ``__name__``.
            regions_and_providers: Paper-style constraint dict with
                ``allowed_regions`` / ``disallowed_regions`` lists of
                ``{"region": ...}`` entries (function-level compliance).
            memory_mb: Configured Lambda memory size.
            profile: Resource/work profile used by the simulated runtime.
            entry_point: Marks the workflow's start function.
            max_instances: Upper bound on parallel stages this function
                fans out to (each stage is a separate DAG node, §4).
            external_data: Fixed external data the function reads.
        """

        def decorator(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
            spec_name = name or fn.__name__
            if spec_name in self._functions:
                raise WorkflowDefinitionError(
                    f"duplicate serverless function {spec_name!r}"
                )
            spec = FunctionSpec(
                name=spec_name,
                handler=fn,
                constraints=self._parse_constraints(regions_and_providers),
                memory_mb=memory_mb,
                profile=profile or WorkProfile(base_seconds=0.5),
                entry_point=entry_point,
                max_instances=max_instances,
                external_data=external_data,
            )
            self._functions[spec_name] = spec
            fn._caribou_spec = spec  # type: ignore[attr-defined]
            return fn

        return decorator

    @staticmethod
    def _parse_constraints(
        raw: Optional[Mapping[str, Sequence[Mapping[str, str]]]]
    ) -> Optional[FunctionConstraints]:
        if raw is None:
            return None
        allowed = raw.get("allowed_regions")
        disallowed = raw.get("disallowed_regions", ())
        return FunctionConstraints(
            allowed_regions=(
                frozenset(entry["region"] for entry in allowed)
                if allowed is not None
                else None
            ),
            disallowed_regions=frozenset(entry["region"] for entry in disallowed),
        )

    # -- runtime API (Listing 1, lines 8-11) ----------------------------------
    def invoke_serverless_function(
        self,
        intermediate_data: "Payload | Any",
        next_function: Any,
        conditional: bool = True,
    ) -> None:
        """Declare/perform a DAG edge to ``next_function``.

        ``conditional`` is "dynamically evaluated when the function is
        executed" (§8): passing ``False`` marks the edge as not taken for
        this invocation, triggering the conditional-DAG skip rules (§4).
        """
        ctx = self._current_context("invoke_serverless_function")
        target = _resolve_function_name(next_function)
        if target not in self._functions:
            raise WorkflowDefinitionError(
                f"invoke_serverless_function targets unregistered function "
                f"{target!r}"
            )
        payload = (
            intermediate_data
            if isinstance(intermediate_data, Payload)
            else Payload(content=intermediate_data)
        )
        ctx.record_intent(target, payload, bool(conditional))

    def get_predecessor_data(self) -> List[Payload]:
        """Retrieve fan-in data; marks the caller as a sync node (§8)."""
        ctx = self._current_context("get_predecessor_data")
        ctx.used_get_predecessor_data = True
        return list(ctx.predecessor_data)

    # -- introspection (used by analysis / deployer / executor) ----------------
    @property
    def functions(self) -> Tuple[FunctionSpec, ...]:
        return tuple(self._functions.values())

    def function(self, name: str) -> FunctionSpec:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(
                f"workflow {self.name!r} has no function {name!r}"
            ) from None

    @property
    def entry_function(self) -> FunctionSpec:
        entries = [f for f in self._functions.values() if f.entry_point]
        if len(entries) != 1:
            raise WorkflowDefinitionError(
                f"workflow {self.name!r} must have exactly one entry_point "
                f"function, found {[f.name for f in entries]}"
            )
        return entries[0]

    # -- context management (called by the executor wrapper) -------------------
    def push_context(self, ctx: ExecutionContext) -> None:
        self._ctx_stack.append(ctx)

    def pop_context(self) -> ExecutionContext:
        if not self._ctx_stack:
            raise RuntimeError("no active execution context to pop")
        return self._ctx_stack.pop()

    def _current_context(self, api_name: str) -> ExecutionContext:
        if not self._ctx_stack:
            raise RuntimeError(
                f"{api_name} called outside a workflow execution; this API "
                "is only valid inside a running serverless function"
            )
        return self._ctx_stack[-1]
