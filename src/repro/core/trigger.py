"""Token-bucket self-regulation of plan generation (paper §5.2, Fig. 6).

Caribou only re-solves when the *carbon budget* earned by a workflow
covers the carbon the solve itself would emit.  Tokens are denominated
in gCO2eq:

* **Earning** — "Functions with higher invocation counts and longer
  runtimes accumulate more tokens.  Each token represents the carbon
  intensity differential between target regions": each invocation in the
  past period earns the carbon that offloading its compute to the
  cleanest permitted region *could* have saved, assuming the next period
  resembles the last (sliding window).  Realised savings from an active
  plan add on top.
* **Spending** — "the cost of a DP generation is estimated by the
  complexity of the application": solve time scales with |N| x |R| per
  hourly plan, priced at the framework region's carbon intensity.
* **Granularity** — the budget decides between 24 hourly plans and a
  single daily plan (§5.2).
* **Check cadence** — the next token check "is determined by the
  difference between the token generation rate and current bucket
  content, smoothed by a sigmoid function".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.metrics.carbon import P_MAX_KW, P_MEM_KW_PER_GB, PUE

#: Measured solve throughput anchor: §9.7 reports ~534 s for 24 hourly
#: solves of Text2Speech Censoring (|N|=7 stages, |R|=4) in Python,
#: i.e. ~22 s per hourly solve -> ~0.8 s per node-region pair.
SOLVE_SECONDS_PER_NODE_REGION = 0.8
#: The solver runs as a 1769 MB (1 vCPU) Lambda at full utilisation.
SOLVER_POWER_KW = P_MAX_KW + P_MEM_KW_PER_GB * (1769.0 / 1024.0)


@dataclass(frozen=True)
class TriggerSettings:
    """Knobs of the self-adaptive trigger."""

    solve_seconds_per_node_region: float = SOLVE_SECONDS_PER_NODE_REGION
    solver_power_kw: float = SOLVER_POWER_KW
    #: Bucket capacity as a multiple of the 24-hour solve cost, bounding
    #: how far ahead a bursty workflow can "save up".
    capacity_solves: float = 4.0
    #: Bounds on the time between token checks, seconds.
    min_check_period_s: float = 3600.0
    max_check_period_s: float = 24 * 3600.0


@dataclass
class EarnReport:
    """Result of one earning step (for observability/tests)."""

    invocations: int
    potential_saving_g: float
    realized_saving_g: float
    earned_g: float
    tokens_after_g: float


class TokenBucket:
    """The §5.2 carbon-budget bucket for one workflow."""

    def __init__(
        self,
        n_nodes: int,
        n_regions: int,
        settings: TriggerSettings = TriggerSettings(),
    ):
        if n_nodes <= 0 or n_regions <= 0:
            raise ValueError("node and region counts must be positive")
        self._n_nodes = n_nodes
        self._n_regions = n_regions
        self.settings = settings
        self.tokens_g = 0.0
        self._last_earn_rate_g_per_s: float = 0.0

    # -- spending side -----------------------------------------------------------
    def solve_cost_g(
        self, framework_intensity: float, granularity_hours: int = 24
    ) -> float:
        """Carbon cost of generating a plan set at the given granularity."""
        if granularity_hours <= 0:
            raise ValueError("granularity_hours must be positive")
        seconds = (
            self.settings.solve_seconds_per_node_region
            * self._n_nodes
            * self._n_regions
            * granularity_hours
        )
        energy_kwh = seconds / 3600.0 * self.settings.solver_power_kw
        return energy_kwh * framework_intensity * PUE

    @property
    def capacity_g(self) -> float:
        # Capacity is defined against a nominal 400 gCO2eq/kWh grid so it
        # does not fluctuate with the framework region's hourly intensity.
        return self.settings.capacity_solves * self.solve_cost_g(400.0, 24)

    # -- earning side ---------------------------------------------------------------
    def earn(
        self,
        invocations: int,
        avg_runtime_s: float,
        avg_memory_mb: float,
        home_intensity: float,
        best_intensity: float,
        period_s: float,
        realized_saving_g: float = 0.0,
    ) -> EarnReport:
        """Accrue tokens for the past period (sliding window, §5.2).

        Args:
            invocations: Workflow invocations observed in the period.
            avg_runtime_s: Mean total execution seconds per invocation.
            avg_memory_mb: Mean configured memory across stages.
            home_intensity: Current home-region ACI, gCO2eq/kWh.
            best_intensity: Lowest ACI among permitted target regions.
            period_s: Length of the period (sets the earn *rate* used
                for check scheduling).
            realized_saving_g: Measured carbon saved by the currently
                active plan over the period, if any.
        """
        if invocations < 0 or period_s <= 0:
            raise ValueError("invocations must be >= 0 and period positive")
        differential = max(0.0, home_intensity - best_intensity)
        # Potential per-invocation saving: compute energy re-priced at
        # the differential (Eq. 7.1 with full-utilisation power).
        power_kw = P_MAX_KW + P_MEM_KW_PER_GB * (avg_memory_mb / 1024.0)
        per_invocation = avg_runtime_s / 3600.0 * power_kw * differential * PUE
        potential = invocations * per_invocation
        earned = potential + max(0.0, realized_saving_g)
        self.tokens_g = min(self.capacity_g, self.tokens_g + earned)
        self._last_earn_rate_g_per_s = earned / period_s
        return EarnReport(
            invocations=invocations,
            potential_saving_g=potential,
            realized_saving_g=realized_saving_g,
            earned_g=earned,
            tokens_after_g=self.tokens_g,
        )

    # -- decisions ------------------------------------------------------------------
    def affordable_granularity(self, framework_intensity: float) -> Optional[int]:
        """Highest affordable plan granularity: 24 (hourly), 1 (daily),
        or ``None`` when even a daily solve is out of budget (§5.2)."""
        if self.tokens_g >= self.solve_cost_g(framework_intensity, 24):
            return 24
        if self.tokens_g >= self.solve_cost_g(framework_intensity, 1):
            return 1
        return None

    def consume(self, framework_intensity: float, granularity_hours: int) -> float:
        """Spend the solve cost; returns the amount consumed."""
        cost = self.solve_cost_g(framework_intensity, granularity_hours)
        if self.tokens_g < cost:
            raise ValueError(
                f"insufficient tokens: have {self.tokens_g:.4g} g, "
                f"need {cost:.4g} g"
            )
        self.tokens_g -= cost
        return cost

    def next_check_delay_s(self, framework_intensity: float) -> float:
        """Sigmoid-smoothed time until the next token check (§5.2).

        The raw signal is the time needed to fill the remaining deficit
        at the last observed earn rate; the sigmoid maps it smoothly
        into [min_check_period, max_check_period] so check frequency
        tracks the invocation rate of the past period without reacting
        violently to single-period noise.
        """
        s = self.settings
        cost = self.solve_cost_g(framework_intensity, 24)
        deficit = max(0.0, cost - self.tokens_g)
        if deficit == 0.0:
            return s.min_check_period_s
        if self._last_earn_rate_g_per_s <= 0.0:
            return s.max_check_period_s
        time_to_fill = deficit / self._last_earn_rate_g_per_s
        midpoint = (s.min_check_period_s + s.max_check_period_s) / 2.0
        steepness = (s.max_check_period_s - s.min_check_period_s) / 8.0
        z = (time_to_fill - midpoint) / steepness
        sigmoid = 1.0 / (1.0 + math.exp(-z))
        return s.min_check_period_s + sigmoid * (
            s.max_check_period_s - s.min_check_period_s
        )
