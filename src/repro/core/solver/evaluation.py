"""Plan evaluation shared by all solvers.

Wraps the Monte-Carlo estimator with: per-plan profile caching (one
simulation run re-priced across the 24 hourly intensities, see
:class:`~repro.metrics.montecarlo.PlanProfile`), compliance filtering of
candidate regions (workflow- and function-level, §8), and QoS tolerance
checks against the home-region baseline (§9.4: a plan violates QoS when
its 95th-percentile tail exceeds the home-region tail augmented by the
developer's tolerance).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.carbon import CarbonModel
from repro.metrics.cost import CostModel
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.montecarlo import (
    MonteCarloEstimator,
    PlanProfile,
    WorkflowEstimate,
    WorkflowModelData,
)
from repro.model.config import WorkflowConfig
from repro.model.dag import WorkflowDAG
from repro.model.plan import DeploymentPlan


@dataclass(frozen=True)
class SolverSettings:
    """Tunables for the solver stack.

    The Monte-Carlo fidelity knobs default *below* the paper's 200/2000
    values because the solver's inner loop evaluates hundreds of plans;
    final candidate ranking can be re-run at full fidelity by callers.
    ``alpha_per_node_region`` is the 6 in Alg. 1 line 2
    (``alpha = |N| x |R| x 6``); ``beta`` its bias, ``gamma`` the initial
    temperature with ``gamma_decay`` applied per accepted move.

    ``parallel_hours`` is the worker count ``solve_day`` uses to fan its
    independent per-hour solves over (per-hour RNG substreams make the
    result identical to the serial reference regardless of scheduling —
    see :meth:`HBSSSolver.solve_day`).  ``1`` (default) keeps the serial
    reference path; ``0`` means one worker per CPU.
    ``parallel_backend`` picks how those workers run: ``"thread"``
    (default; GIL-bound but cheap to start) or ``"process"`` (fork-based
    multicore pool, see :mod:`repro.core.solver.parallel`).  Both are
    bit-identical to serial.

    ``wave_size`` is the number of candidate plans an HBSS iteration
    wave generates before evaluating them; waves of two or more are
    evaluated through the cross-plan batched Monte-Carlo kernel
    (:meth:`~repro.metrics.montecarlo.MonteCarloEstimator.estimate_profiles`).
    ``1`` (default) preserves Alg. 1's serial generate-then-accept
    trajectory exactly; larger waves trade some search adaptivity for
    kernel throughput and are a deliberate algorithm variant, not a
    drop-in equivalent.  ``batched_evaluation`` gates the batched kernel
    itself: when False, wave candidates fall back to per-plan profile
    builds (bit-identical values — the differential tests rely on it).

    ``solver`` picks which search strategy the harness/CLI runs:
    ``"hbss"`` (Alg. 1, the production default), ``"coarse"``
    (single-region), ``"exhaustive"`` (full enumeration, refuses >100k
    plans), or ``"exact"`` (provably optimal branch-and-bound, see
    :mod:`repro.core.solver.exact`).
    """

    batch_size: int = 100
    max_samples: int = 400
    cov_threshold: float = 0.08
    alpha_per_node_region: int = 6
    beta: float = 0.2
    gamma: float = 1.0
    gamma_decay: float = 0.99
    parallel_hours: int = 1
    parallel_backend: str = "thread"
    wave_size: int = 1
    batched_evaluation: bool = True
    solver: str = "hbss"

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.max_samples <= 0:
            raise ValueError("Monte-Carlo sample knobs must be positive")
        if self.cov_threshold <= 0:
            raise ValueError(
                f"cov_threshold must be positive, got {self.cov_threshold}"
            )
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {self.beta}")
        if self.alpha_per_node_region <= 0:
            raise ValueError("alpha_per_node_region must be positive")
        if self.gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {self.gamma}")
        if not 0.0 < self.gamma_decay <= 1.0:
            raise ValueError(
                f"gamma_decay must be in (0, 1], got {self.gamma_decay}"
            )
        if self.parallel_hours < 0:
            raise ValueError(
                f"parallel_hours must be >= 0 (0 = one worker per CPU), "
                f"got {self.parallel_hours}"
            )
        if self.parallel_backend not in ("thread", "process"):
            raise ValueError(
                f"parallel_backend must be 'thread' or 'process', "
                f"got {self.parallel_backend!r}"
            )
        if self.wave_size <= 0:
            raise ValueError(
                f"wave_size must be positive, got {self.wave_size}"
            )
        if self.solver not in ("hbss", "coarse", "exhaustive", "exact"):
            raise ValueError(
                f"solver must be one of 'hbss', 'coarse', 'exhaustive', "
                f"'exact', got {self.solver!r}"
            )


@dataclass
class SolverStats:
    """Instrumentation counters shared across one solver run.

    The :class:`PlanEvaluator` owns one (or accepts a caller-provided
    instance) and threads it into the Monte-Carlo estimator; solvers
    accumulate wall time into it.  All counters are cumulative over the
    evaluator's lifetime, so a 24-hour ``solve_day`` reports totals.

    Concurrent hour workers share one instance; use :meth:`bump` (a
    lock-guarded multi-field add) instead of ``stats.field += n`` on any
    path that can run inside a parallel ``solve_day``.  The count
    *totals* are scheduling-invariant: per distinct plan exactly one
    profile build happens (the evaluator's per-digest build locks
    guarantee it) and every other lookup is a hit, so serial and
    parallel solves report identical counters — only ``wall_time_s`` is
    machine/scheduling dependent, and deterministic surfaces (run
    reports) already exclude it.

    Attributes:
        simulations_run: Monte-Carlo profile runs actually simulated.
        samples_drawn: Total simulation samples across those runs.
        profiles_built / profile_cache_hits: :meth:`PlanEvaluator.profile`
            misses vs hits — the hit rate is the payoff of the
            hour-independent :class:`PlanProfile` re-pricing contract.
        estimates_computed / estimate_cache_hits: Per-(plan, hour)
            estimate misses vs hits.
        bnb_nodes_expanded / bnb_nodes_pruned: Branch-and-bound search
            states expanded vs cut by the admissible bound
            (:class:`~repro.core.solver.exact.ExactSolver` only; zero
            for every other solver).
        bnb_hours_solved: Hour solves the exact solver completed;
            divides ``bnb_bound_tightness_pct`` (a cumulative sum of
            per-hour root-bound/optimum ratios) into an average.
        wall_time_s: Solver time spent inside ``solve_hour`` calls.
    """

    simulations_run: int = 0
    samples_drawn: int = 0
    profiles_built: int = 0
    profile_cache_hits: int = 0
    estimates_computed: int = 0
    estimate_cache_hits: int = 0
    bnb_nodes_expanded: int = 0
    bnb_nodes_pruned: int = 0
    bnb_hours_solved: int = 0
    bnb_bound_tightness_pct: float = 0.0
    wall_time_s: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    #: Counter fields carried across the process-pool boundary.
    COUNTER_FIELDS = (
        "simulations_run",
        "samples_drawn",
        "profiles_built",
        "profile_cache_hits",
        "estimates_computed",
        "estimate_cache_hits",
        "bnb_nodes_expanded",
        "bnb_nodes_pruned",
        "bnb_hours_solved",
        "bnb_bound_tightness_pct",
        "wall_time_s",
    )

    def bump(self, **deltas: float) -> None:
        """Atomically add ``deltas`` to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the counters.

        :class:`SolverStats` itself holds a ``threading.Lock`` and is
        not picklable; process-pool hour workers snapshot before/after
        their solve and ship the *delta* dict back to the parent (see
        ``HBSSSolver.solve_day``).  Note the scheduling-invariance
        promise above holds for serial and thread runs only: process
        workers start from a fork-time cache copy, so plans already
        cached in the parent may be rebuilt per worker and the summed
        build/hit counters can exceed the serial ones.  Plan *results*
        remain bit-identical.
        """
        with self._lock:
            return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def summary(self) -> str:
        """One-line human-readable digest for CLI/harness output."""
        total_profile = self.profiles_built + self.profile_cache_hits
        hit_rate = (
            self.profile_cache_hits / total_profile if total_profile else 0.0
        )
        line = (
            f"{self.simulations_run} simulations "
            f"({self.samples_drawn} samples), "
            f"{self.profiles_built} profiles built, "
            f"profile cache hit rate {hit_rate:.0%}, "
            f"{self.estimates_computed} estimates computed "
            f"({self.estimate_cache_hits} cached), "
            f"solver wall time {self.wall_time_s:.2f}s"
        )
        if self.bnb_hours_solved:
            tightness = self.bnb_bound_tightness_pct / self.bnb_hours_solved
            line += (
                f", B&B {self.bnb_nodes_expanded} expanded / "
                f"{self.bnb_nodes_pruned} pruned "
                f"(bound tightness {tightness:.0f}%)"
            )
        return line


class EvaluationCache:
    """Persistent, digest-keyed store of plan profiles and estimates.

    A :class:`PlanEvaluator` is cheap, stateless glue over its inputs;
    the *expensive* state — Monte-Carlo :class:`PlanProfile` runs and
    per-``(plan, hour)`` estimates — lives here, keyed by
    :meth:`DeploymentPlan.digest` so it survives evaluator
    reconstruction (the Deployment Manager builds a fresh evaluator on
    every token check, §5.2, but the workload's plan space barely moves
    between checks).

    Entries are only valid for one version of the learned inputs:
    callers declare the current ``(metrics_version, forecast_version)``
    pair via :meth:`sync` and the cache clears itself whenever the pair
    changes (new telemetry collected, forecasts refit).  All access is
    lock-guarded; per-digest build locks let concurrent hour workers
    block on a profile already being built instead of duplicating the
    simulation.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self._profiles: Dict[str, PlanProfile] = {}
        self._estimates: Dict[Tuple[str, int], WorkflowEstimate] = {}
        self._build_locks: Dict[str, threading.Lock] = {}
        self._version: Optional[Tuple[object, object]] = None
        #: Times :meth:`sync` dropped a populated cache (observability).
        self.invalidations = 0

    def sync(self, metrics_version: object, forecast_version: object) -> bool:
        """Declare the current input versions; returns True if stale
        entries were dropped."""
        version = (metrics_version, forecast_version)
        with self.lock:
            if version == self._version:
                return False
            had_entries = bool(self._profiles or self._estimates)
            self._profiles.clear()
            self._estimates.clear()
            self._build_locks.clear()
            self._version = version
            if had_entries:
                self.invalidations += 1
            return had_entries

    def clear(self) -> None:
        """Drop everything (keeps the declared version)."""
        with self.lock:
            self._profiles.clear()
            self._estimates.clear()
            self._build_locks.clear()

    @property
    def profiles_cached(self) -> int:
        with self.lock:
            return len(self._profiles)

    @property
    def estimates_cached(self) -> int:
        with self.lock:
            return len(self._estimates)


class SharedEvaluationCache:
    """Fleet-wide cache facade: one accounting surface, per-workflow scopes.

    Plan digests hash plan *content* only, so two workflows with
    identical DAG shapes can collide on a digest while their learned
    metrics — and therefore the correct profiles — differ.  Sharing one
    flat :class:`EvaluationCache` across a fleet would silently serve
    workflow A's Monte-Carlo results to workflow B.  Instead the fleet
    shares this object and each :class:`~repro.core.manager.DeploymentManager`
    gets its own *scope* (a plain ``EvaluationCache``): entries stay
    correct per workflow, while capacity accounting, invalidation
    counts, and observability roll up fleet-wide.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._scopes: Dict[str, EvaluationCache] = {}

    def scope(self, name: str) -> EvaluationCache:
        """The (created-on-first-use) cache scope for one workflow."""
        with self._lock:
            cache = self._scopes.get(name)
            if cache is None:
                cache = self._scopes[name] = EvaluationCache()
            return cache

    def drop_scope(self, name: str) -> None:
        with self._lock:
            self._scopes.pop(name, None)

    def clear_all(self) -> None:
        """Drop every scope's entries (versions are kept)."""
        with self._lock:
            scopes = list(self._scopes.values())
        for cache in scopes:
            cache.clear()

    @property
    def scopes(self) -> int:
        with self._lock:
            return len(self._scopes)

    @property
    def profiles_cached(self) -> int:
        with self._lock:
            scopes = list(self._scopes.values())
        return sum(c.profiles_cached for c in scopes)

    @property
    def estimates_cached(self) -> int:
        with self._lock:
            scopes = list(self._scopes.values())
        return sum(c.estimates_cached for c in scopes)

    @property
    def invalidations(self) -> int:
        with self._lock:
            scopes = list(self._scopes.values())
        return sum(c.invalidations for c in scopes)


class PlanEvaluator:
    """Answers metric/tolerance queries over a shared evaluation cache.

    Thread-safe: concurrent per-hour solver workers may share one
    evaluator.  Distinct plans build their profiles concurrently; the
    same plan is only ever simulated once (build locks), and the
    per-plan RNG substreams of the underlying estimator make every
    cached value independent of build order.
    """

    def __init__(
        self,
        dag: WorkflowDAG,
        config: WorkflowConfig,
        data: WorkflowModelData,
        regions: Sequence[str],
        intensity_fn: Callable[[str, int], float],
        carbon_model: CarbonModel,
        cost_model: CostModel,
        latency_model: TransferLatencyModel,
        rng: np.random.Generator,
        kv_region: Optional[str] = None,
        client_region: Optional[str] = None,
        settings: SolverSettings = SolverSettings(),
        stats: Optional[SolverStats] = None,
        cache: Optional[EvaluationCache] = None,
    ):
        """Args:
        dag / config / data: The workflow and its learned behaviour.
        regions: Candidate regions (the provider's available set).
        intensity_fn: ``(region, hour) -> gCO2eq/kWh``; typically the
            Metrics Manager's forecast-aware accessor.
        carbon_model / cost_model / latency_model: Pricing models.
        rng: Solver-owned random stream.
        kv_region: Framework KV-store region (defaults to home).
        client_region: Where the invocation client sits (defaults to
            home).  Distinct from ``kv_region``: the client sources the
            end-user input transfer, the KV region relays sync-node
            fan-in data.  Conflating them would price a shifted start
            node's input transfer as free.
        settings: Fidelity and HBSS hyper-parameters.
        stats: Counter object to accumulate into (a fresh
            :class:`SolverStats` is created when omitted).
        cache: Shared :class:`EvaluationCache` to read/write (a private
            one is created when omitted, restoring the old
            evaluator-lifetime caching).  Callers owning a persistent
            cache must :meth:`EvaluationCache.sync` it whenever the
            learned metrics or forecasts feeding this evaluator change.
        """
        self.dag = dag
        self.config = config
        self.settings = settings
        self.stats = stats if stats is not None else SolverStats()
        self._intensity_fn = intensity_fn
        self._kv_region = kv_region or config.home_region
        self._client_region = client_region or config.home_region
        self._data = data
        self._carbon_model = carbon_model
        self._cost_model = cost_model
        self._latency_model = latency_model
        self._estimator = MonteCarloEstimator(
            dag,
            data,
            carbon_model,
            cost_model,
            latency_model,
            rng,
            kv_region=self._kv_region,
            client_region=self._client_region,
            batch_size=settings.batch_size,
            max_samples=settings.max_samples,
            cov_threshold=settings.cov_threshold,
            stats=self.stats,
        )
        self._cache = cache if cache is not None else EvaluationCache()
        self._permitted: Dict[str, Tuple[str, ...]] = {}
        for node in dag.node_names:
            function = dag.node(node).function
            allowed = config.permitted_regions_for_function(function, regions)
            if not allowed:
                raise ValueError(
                    f"compliance constraints leave no region for node "
                    f"{node!r} (function {function!r})"
                )
            self._permitted[node] = allowed
        self.regions = tuple(regions)

    # -- model access (read-only; the exact solver's bound tables price
    # -- minimum-support contributions through the same models the
    # -- Monte-Carlo kernel uses) --------------------------------------------
    @property
    def data(self) -> WorkflowModelData:
        return self._data

    @property
    def carbon_model(self) -> CarbonModel:
        return self._carbon_model

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def latency_model(self) -> TransferLatencyModel:
        return self._latency_model

    @property
    def kv_region(self) -> str:
        return self._kv_region

    @property
    def client_region(self) -> str:
        return self._client_region

    def intensity(self, region: str, hour: int) -> float:
        """The grid intensity the estimate cache prices with."""
        return self._intensity_fn(region, hour)

    # -- candidate space -----------------------------------------------------
    def permitted_regions(self, node: str) -> Tuple[str, ...]:
        """Regions node may be deployed to after compliance filtering."""
        return self._permitted[node]

    def search_space_size(self) -> int:
        size = 1
        for node in self.dag.node_names:
            size *= len(self._permitted[node])
            if size > 10**15:  # avoid astronomically large ints downstream
                return 10**15
        return size

    def home_plan(self) -> DeploymentPlan:
        return DeploymentPlan.single_region(self.dag, self.config.home_region)

    def is_plan_compliant(self, plan: DeploymentPlan) -> bool:
        return all(
            plan.region_of(node) in self._permitted[node]
            for node in self.dag.node_names
        )

    # -- evaluation -------------------------------------------------------------
    @property
    def cache(self) -> EvaluationCache:
        return self._cache

    def profile(self, plan: DeploymentPlan) -> PlanProfile:
        digest = plan.digest()
        cache = self._cache
        with cache.lock:
            profile = cache._profiles.get(digest)
            if profile is None:
                build_lock = cache._build_locks.setdefault(
                    digest, threading.Lock()
                )
        if profile is not None:
            self.stats.bump(profile_cache_hits=1)
            return profile
        # Build outside the cache lock (the simulation is the expensive
        # part); the per-digest lock makes racing workers for the *same*
        # plan wait for one build instead of duplicating it.
        with build_lock:
            with cache.lock:
                profile = cache._profiles.get(digest)
            if profile is not None:
                self.stats.bump(profile_cache_hits=1)
                return profile
            profile = self._estimator.estimate_profile(plan)
            with cache.lock:
                cache._profiles[digest] = profile
            self.stats.bump(profiles_built=1)
            return profile

    def prefetch_profiles(self, plans: Sequence[DeploymentPlan]) -> int:
        """Build every uncached plan profile through the cross-plan
        batched kernel; returns the number of profiles built.

        Values are bit-identical to per-plan :meth:`profile` builds
        (each plan draws from its own digest-keyed substream), so
        prefetching only changes *when* profiles are built, never what
        they contain.  Safe under concurrent hour workers: per-digest
        build locks are acquired in sorted-digest order (no deadlock
        against other prefetchers), and any plan another worker finishes
        first is simply skipped.  No-op when ``batched_evaluation`` is
        disabled in the settings — callers need no branch.
        """
        if not self.settings.batched_evaluation:
            return 0
        unique: Dict[str, DeploymentPlan] = {}
        for plan in plans:
            unique.setdefault(plan.digest(), plan)
        cache = self._cache
        with cache.lock:
            missing = [
                (digest, plan)
                for digest, plan in unique.items()
                if digest not in cache._profiles
            ]
            locks = {
                digest: cache._build_locks.setdefault(digest, threading.Lock())
                for digest, _ in missing
            }
        if not missing:
            return 0
        acquired = []
        try:
            for digest in sorted(locks):
                locks[digest].acquire()
                acquired.append(locks[digest])
            with cache.lock:
                to_build = [
                    (digest, plan)
                    for digest, plan in missing
                    if digest not in cache._profiles
                ]
            if not to_build:
                return 0
            profiles = self._estimator.estimate_profiles(
                [plan for _, plan in to_build]
            )
            with cache.lock:
                for (digest, _), profile in zip(to_build, profiles):
                    cache._profiles[digest] = profile
            self.stats.bump(profiles_built=len(to_build))
            return len(to_build)
        finally:
            for lock in acquired:
                lock.release()

    def estimate(self, plan: DeploymentPlan, hour: int) -> WorkflowEstimate:
        key = (plan.digest(), hour)
        cache = self._cache
        with cache.lock:
            estimate = cache._estimates.get(key)
        if estimate is not None:
            self.stats.bump(estimate_cache_hits=1)
            return estimate
        profile = self.profile(plan)
        estimate = profile.estimate_at(
            lambda region: self._intensity_fn(region, hour)
        )
        with cache.lock:
            # Concurrent same-key computes are only possible for shared
            # anchors (e.g. the home baseline); the value is a pure
            # function of the cached profile, so first-write-wins keeps
            # every reader consistent.
            estimate = cache._estimates.setdefault(key, estimate)
        self.stats.bump(estimates_computed=1)
        return estimate

    def baseline(self, hour: int) -> WorkflowEstimate:
        """Home-region single-deployment estimate: the QoS anchor."""
        return self.estimate(self.home_plan(), hour)

    def metric(self, plan: DeploymentPlan, hour: int) -> float:
        return self.estimate(plan, hour).metric(self.config.priority)

    @property
    def plans_profiled(self) -> int:
        return self._cache.profiles_cached

    # -- tolerances -----------------------------------------------------------
    def tolerance_violated(self, plan: DeploymentPlan, hour: int) -> bool:
        """Alg. 1's ``ToleranceViolated``: tail metrics vs the augmented
        home baseline (§9.4)."""
        tol = self.config.tolerances
        if tol.latency is None and tol.carbon is None and tol.cost is None:
            return False
        est = self.estimate(plan, hour)
        base = self.baseline(hour)
        if tol.latency is not None and est.tail_latency_s > base.tail_latency_s * (
            1.0 + tol.latency
        ):
            return True
        if tol.carbon is not None and est.tail_carbon_g > base.tail_carbon_g * (
            1.0 + tol.carbon
        ):
            return True
        if tol.cost is not None and est.tail_cost_usd > base.tail_cost_usd * (
            1.0 + tol.cost
        ):
            return True
        return False
