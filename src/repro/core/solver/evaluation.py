"""Plan evaluation shared by all solvers.

Wraps the Monte-Carlo estimator with: per-plan profile caching (one
simulation run re-priced across the 24 hourly intensities, see
:class:`~repro.metrics.montecarlo.PlanProfile`), compliance filtering of
candidate regions (workflow- and function-level, §8), and QoS tolerance
checks against the home-region baseline (§9.4: a plan violates QoS when
its 95th-percentile tail exceeds the home-region tail augmented by the
developer's tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.carbon import CarbonModel
from repro.metrics.cost import CostModel
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.montecarlo import (
    MonteCarloEstimator,
    PlanProfile,
    WorkflowEstimate,
    WorkflowModelData,
)
from repro.model.config import WorkflowConfig
from repro.model.dag import WorkflowDAG
from repro.model.plan import DeploymentPlan


@dataclass(frozen=True)
class SolverSettings:
    """Tunables for the solver stack.

    The Monte-Carlo fidelity knobs default *below* the paper's 200/2000
    values because the solver's inner loop evaluates hundreds of plans;
    final candidate ranking can be re-run at full fidelity by callers.
    ``alpha_per_node_region`` is the 6 in Alg. 1 line 2
    (``alpha = |N| x |R| x 6``); ``beta`` its bias, ``gamma`` the initial
    temperature with ``gamma_decay`` applied per accepted move.
    """

    batch_size: int = 100
    max_samples: int = 400
    cov_threshold: float = 0.08
    alpha_per_node_region: int = 6
    beta: float = 0.2
    gamma: float = 1.0
    gamma_decay: float = 0.99

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.max_samples <= 0:
            raise ValueError("Monte-Carlo sample knobs must be positive")
        if self.cov_threshold <= 0:
            raise ValueError(
                f"cov_threshold must be positive, got {self.cov_threshold}"
            )
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {self.beta}")
        if self.alpha_per_node_region <= 0:
            raise ValueError("alpha_per_node_region must be positive")
        if self.gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {self.gamma}")
        if not 0.0 < self.gamma_decay <= 1.0:
            raise ValueError(
                f"gamma_decay must be in (0, 1], got {self.gamma_decay}"
            )


@dataclass
class SolverStats:
    """Instrumentation counters shared across one solver run.

    The :class:`PlanEvaluator` owns one (or accepts a caller-provided
    instance) and threads it into the Monte-Carlo estimator; solvers
    accumulate wall time into it.  All counters are cumulative over the
    evaluator's lifetime, so a 24-hour ``solve_day`` reports totals.

    Attributes:
        simulations_run: Monte-Carlo profile runs actually simulated.
        samples_drawn: Total simulation samples across those runs.
        profiles_built / profile_cache_hits: :meth:`PlanEvaluator.profile`
            misses vs hits — the hit rate is the payoff of the
            hour-independent :class:`PlanProfile` re-pricing contract.
        estimates_computed / estimate_cache_hits: Per-(plan, hour)
            estimate misses vs hits.
        wall_time_s: Solver time spent inside ``solve_hour`` calls.
    """

    simulations_run: int = 0
    samples_drawn: int = 0
    profiles_built: int = 0
    profile_cache_hits: int = 0
    estimates_computed: int = 0
    estimate_cache_hits: int = 0
    wall_time_s: float = 0.0

    def summary(self) -> str:
        """One-line human-readable digest for CLI/harness output."""
        total_profile = self.profiles_built + self.profile_cache_hits
        hit_rate = (
            self.profile_cache_hits / total_profile if total_profile else 0.0
        )
        return (
            f"{self.simulations_run} simulations "
            f"({self.samples_drawn} samples), "
            f"{self.profiles_built} profiles built, "
            f"profile cache hit rate {hit_rate:.0%}, "
            f"{self.estimates_computed} estimates computed "
            f"({self.estimate_cache_hits} cached), "
            f"solver wall time {self.wall_time_s:.2f}s"
        )


class PlanEvaluator:
    """Caches plan profiles and answers metric/tolerance queries."""

    def __init__(
        self,
        dag: WorkflowDAG,
        config: WorkflowConfig,
        data: WorkflowModelData,
        regions: Sequence[str],
        intensity_fn: Callable[[str, int], float],
        carbon_model: CarbonModel,
        cost_model: CostModel,
        latency_model: TransferLatencyModel,
        rng: np.random.Generator,
        kv_region: Optional[str] = None,
        client_region: Optional[str] = None,
        settings: SolverSettings = SolverSettings(),
        stats: Optional[SolverStats] = None,
    ):
        """Args:
        dag / config / data: The workflow and its learned behaviour.
        regions: Candidate regions (the provider's available set).
        intensity_fn: ``(region, hour) -> gCO2eq/kWh``; typically the
            Metrics Manager's forecast-aware accessor.
        carbon_model / cost_model / latency_model: Pricing models.
        rng: Solver-owned random stream.
        kv_region: Framework KV-store region (defaults to home).
        client_region: Where the invocation client sits (defaults to
            home).  Distinct from ``kv_region``: the client sources the
            end-user input transfer, the KV region relays sync-node
            fan-in data.  Conflating them would price a shifted start
            node's input transfer as free.
        settings: Fidelity and HBSS hyper-parameters.
        stats: Counter object to accumulate into (a fresh
            :class:`SolverStats` is created when omitted).
        """
        self.dag = dag
        self.config = config
        self.settings = settings
        self.stats = stats if stats is not None else SolverStats()
        self._intensity_fn = intensity_fn
        self._kv_region = kv_region or config.home_region
        self._client_region = client_region or config.home_region
        self._estimator = MonteCarloEstimator(
            dag,
            data,
            carbon_model,
            cost_model,
            latency_model,
            rng,
            kv_region=self._kv_region,
            client_region=self._client_region,
            batch_size=settings.batch_size,
            max_samples=settings.max_samples,
            cov_threshold=settings.cov_threshold,
            stats=self.stats,
        )
        self._profiles: Dict[DeploymentPlan, PlanProfile] = {}
        self._estimates: Dict[Tuple[DeploymentPlan, int], WorkflowEstimate] = {}
        self._permitted: Dict[str, Tuple[str, ...]] = {}
        for node in dag.node_names:
            function = dag.node(node).function
            allowed = config.permitted_regions_for_function(function, regions)
            if not allowed:
                raise ValueError(
                    f"compliance constraints leave no region for node "
                    f"{node!r} (function {function!r})"
                )
            self._permitted[node] = allowed
        self.regions = tuple(regions)

    # -- candidate space -----------------------------------------------------
    def permitted_regions(self, node: str) -> Tuple[str, ...]:
        """Regions node may be deployed to after compliance filtering."""
        return self._permitted[node]

    def search_space_size(self) -> int:
        size = 1
        for node in self.dag.node_names:
            size *= len(self._permitted[node])
            if size > 10**15:  # avoid astronomically large ints downstream
                return 10**15
        return size

    def home_plan(self) -> DeploymentPlan:
        return DeploymentPlan.single_region(self.dag, self.config.home_region)

    def is_plan_compliant(self, plan: DeploymentPlan) -> bool:
        return all(
            plan.region_of(node) in self._permitted[node]
            for node in self.dag.node_names
        )

    # -- evaluation -------------------------------------------------------------
    def profile(self, plan: DeploymentPlan) -> PlanProfile:
        if plan not in self._profiles:
            self._profiles[plan] = self._estimator.estimate_profile(plan)
            self.stats.profiles_built += 1
        else:
            self.stats.profile_cache_hits += 1
        return self._profiles[plan]

    def estimate(self, plan: DeploymentPlan, hour: int) -> WorkflowEstimate:
        key = (plan, hour)
        if key not in self._estimates:
            profile = self.profile(plan)
            self._estimates[key] = profile.estimate_at(
                lambda region: self._intensity_fn(region, hour)
            )
            self.stats.estimates_computed += 1
        else:
            self.stats.estimate_cache_hits += 1
        return self._estimates[key]

    def baseline(self, hour: int) -> WorkflowEstimate:
        """Home-region single-deployment estimate: the QoS anchor."""
        return self.estimate(self.home_plan(), hour)

    def metric(self, plan: DeploymentPlan, hour: int) -> float:
        return self.estimate(plan, hour).metric(self.config.priority)

    @property
    def plans_profiled(self) -> int:
        return len(self._profiles)

    # -- tolerances -----------------------------------------------------------
    def tolerance_violated(self, plan: DeploymentPlan, hour: int) -> bool:
        """Alg. 1's ``ToleranceViolated``: tail metrics vs the augmented
        home baseline (§9.4)."""
        tol = self.config.tolerances
        if tol.latency is None and tol.carbon is None and tol.cost is None:
            return False
        est = self.estimate(plan, hour)
        base = self.baseline(hour)
        if tol.latency is not None and est.tail_latency_s > base.tail_latency_s * (
            1.0 + tol.latency
        ):
            return True
        if tol.carbon is not None and est.tail_carbon_g > base.tail_carbon_g * (
            1.0 + tol.carbon
        ):
            return True
        if tol.cost is not None and est.tail_cost_usd > base.tail_cost_usd * (
            1.0 + tol.cost
        ):
            return True
        return False
