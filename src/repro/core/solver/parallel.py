"""Fork-based process-pool fan-out for per-hour solver work.

The thread-pool ``solve_day`` fan-out is GIL-bound: the per-hour HBSS
walks are numpy-light Python loops, so threads serialise on the
interpreter and "parallel" runs measure *slower* than serial.  This
module provides the true-multicore alternative.

Design: the worker function is installed in a module global *before*
the pool forks, so children inherit it (and everything it closes over —
the solver, its evaluator, learned model data, closures like the
intensity accessor) by address-space copy.  Nothing of that object graph
is ever pickled; only the per-hour **tasks** and **results** cross the
process boundary, and those are small picklable tuples by construction
(plans, estimates, numpy generator states, plain-dict counter deltas).

Fork semantics also give each child a snapshot of the parent's
evaluation cache at pool-creation time.  Per-plan digest-keyed RNG
substreams make every cached value order-independent, so child-local
cache divergence cannot change any plan result — solve outputs stay
bit-identical to the serial reference.  Only *counters* differ: a plan
the parent had not cached yet may be rebuilt by several workers (their
caches do not merge back), so summed build counters can exceed serial
ones.

On platforms without the ``fork`` start method (Windows; macOS defaults
to ``spawn``) the map falls back to in-process serial execution with a
warning — results are identical either way, only the speedup is lost.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Any, Callable, List, Sequence

#: Worker function slot inherited by forked children.  Module-global on
#: purpose: ``Pool`` only ever pickles the tiny ``_invoke`` trampoline,
#: never the function (or the solver object graph) bound here.
_FORK_FN: Any = None


def _invoke(task: Any) -> Any:
    return _FORK_FN(task)


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def process_map(
    fn: Callable[[Any], Any], tasks: Sequence[Any], n_jobs: int
) -> List[Any]:
    """Map ``fn`` over ``tasks`` in a fork-based process pool.

    ``fn`` reaches the workers via fork inheritance and may therefore
    close over arbitrarily rich (unpicklable) state; each task and each
    result must be picklable.  Do not call while other threads of the
    parent may hold locks ``fn`` needs — forked children inherit lock
    state (``solve_day`` only forks from its main thread, where no
    solver lock is held).
    """
    if not tasks:
        return []
    if not fork_available():  # pragma: no cover - platform dependent
        warnings.warn(
            "fork start method unavailable on this platform; process "
            "backend falling back to in-process serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(task) for task in tasks]
    global _FORK_FN
    if _FORK_FN is not None:
        raise RuntimeError("process_map is not reentrant")
    context = multiprocessing.get_context("fork")
    _FORK_FN = fn
    try:
        with context.Pool(processes=n_jobs) as pool:
            return pool.map(_invoke, tasks)
    finally:
        _FORK_FN = None
