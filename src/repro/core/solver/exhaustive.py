"""Exhaustive deployment search (the intractable baseline, §5.1).

The paper reports that a breadth-first/exhaustive strategy "proved
intractable and resource-inefficient" for realistic workflows.  For
*small* DAGs it is still the gold standard: it enumerates the full
``prod_n |permitted(n)|`` space and returns the true optimum, which the
test suite and the solver-quality ablation bench use to measure how
close HBSS gets at a fraction of the evaluations.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional, Tuple

from repro.common.errors import SolverError
from repro.core.solver.evaluation import PlanEvaluator
from repro.metrics.montecarlo import WorkflowEstimate
from repro.model.plan import DeploymentPlan

#: Refuse to enumerate spaces larger than this (the whole point of HBSS).
DEFAULT_MAX_PLANS = 100_000


class ExhaustiveSolver:
    """Enumerates every compliant plan; exact but exponential."""

    def __init__(self, evaluator: PlanEvaluator, max_plans: int = DEFAULT_MAX_PLANS):
        self._ev = evaluator
        self._max_plans = max_plans

    def solve_hour(
        self, hour: int, enforce_tolerances: bool = True
    ) -> Tuple[DeploymentPlan, WorkflowEstimate]:
        start_time = time.perf_counter()
        ev = self._ev
        space = ev.search_space_size()
        if space > self._max_plans:
            raise SolverError(
                f"search space has {space} plans, exceeding the exhaustive "
                f"limit of {self._max_plans}; use HBSSSolver instead"
            )
        nodes = ev.dag.node_names
        domains = [ev.permitted_regions(n) for n in nodes]
        best_plan: Optional[DeploymentPlan] = None
        best_metric = float("inf")
        for combo in itertools.product(*domains):
            plan = DeploymentPlan(dict(zip(nodes, combo)))
            if enforce_tolerances and ev.tolerance_violated(plan, hour):
                continue
            metric = ev.metric(plan, hour)
            if metric < best_metric:
                best_plan, best_metric = plan, metric
        if best_plan is None:
            # Every plan violates tolerances: fall back to home (§6.1).
            best_plan = ev.home_plan()
        ev.stats.wall_time_s += time.perf_counter() - start_time
        return best_plan, ev.estimate(best_plan, hour)
