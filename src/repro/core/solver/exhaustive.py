"""Exhaustive deployment search (the intractable baseline, §5.1).

The paper reports that a breadth-first/exhaustive strategy "proved
intractable and resource-inefficient" for realistic workflows.  For
*small* DAGs it is still the gold standard: it enumerates the full
``prod_n |permitted(n)|`` space and returns the true optimum, which the
test suite and the solver-quality ablation bench use to measure how
close HBSS gets at a fraction of the evaluations.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Tuple

from repro.common.errors import SolverError
from repro.core.solver.evaluation import PlanEvaluator
from repro.core.solver.exact import BOUND_SAFETY, LowerBoundTables
from repro.core.solver.hbss import resolve_jobs
from repro.core.solver.parallel import process_map
from repro.metrics.montecarlo import WorkflowEstimate
from repro.model.plan import DeploymentPlan, HourlyPlanSet

#: Refuse to enumerate spaces larger than this (the whole point of HBSS).
DEFAULT_MAX_PLANS = 100_000

#: Plans per batched-prefetch wave: bounds the stacked kernel's working
#: set (wave x max_samples doubles per accumulator array).
PREFETCH_WAVE = 64


class ExhaustiveSolver:
    """Enumerates every compliant plan; exact but exponential."""

    def __init__(self, evaluator: PlanEvaluator, max_plans: int = DEFAULT_MAX_PLANS):
        self._ev = evaluator
        self._max_plans = max_plans
        self._bounds: Optional[LowerBoundTables] = None

    def solve_hour(
        self, hour: int, enforce_tolerances: bool = True
    ) -> Tuple[DeploymentPlan, WorkflowEstimate]:
        start_time = time.perf_counter()
        ev = self._ev
        space = ev.search_space_size()
        if space > self._max_plans:
            raise SolverError(
                f"search space has {space} plans, exceeding the exhaustive "
                f"limit of {self._max_plans}; use HBSSSolver instead"
            )
        nodes = ev.dag.node_names
        domains = [ev.permitted_regions(n) for n in nodes]
        all_plans = [
            DeploymentPlan(dict(zip(nodes, combo)))
            for combo in itertools.product(*domains)
        ]
        # When tolerances are enforced, cheap admissible lower bounds
        # (see :class:`~repro.core.solver.exact.LowerBoundTables`) cut
        # plans that *provably* violate a §9.4 threshold before any
        # Monte-Carlo work: every sample — hence every p95 tail — of
        # such a plan is at least its bound, so skipping it can never
        # change the winner.  Without the filter, every dead plan was
        # fully simulated just to be discarded by ``tolerance_violated``.
        tol = ev.config.tolerances
        if enforce_tolerances and tol is not None and not (
            tol.latency is None and tol.carbon is None and tol.cost is None
        ):
            if self._bounds is None:
                self._bounds = LowerBoundTables(ev)
            base = ev.baseline(hour)
            thr_latency = (
                base.tail_latency_s * (1.0 + tol.latency)
                if tol.latency is not None
                else float("inf")
            )
            thr_carbon = (
                base.tail_carbon_g * (1.0 + tol.carbon)
                if tol.carbon is not None
                else float("inf")
            )
            thr_cost = (
                base.tail_cost_usd * (1.0 + tol.cost)
                if tol.cost is not None
                else float("inf")
            )
            candidates = []
            for plan in all_plans:
                carbon_lb, cost_lb, lat_lb = self._bounds.plan_lower_bounds(
                    plan, hour
                )
                if (
                    carbon_lb * BOUND_SAFETY > thr_carbon
                    or cost_lb * BOUND_SAFETY > thr_cost
                    or lat_lb * BOUND_SAFETY > thr_latency
                ):
                    continue
                candidates.append(plan)
        else:
            candidates = all_plans
        # Prefetch profiles in bounded waves through the cross-plan
        # batched kernel — every surviving plan gets ranked below
        # anyway, so this only front-loads (and batches) the work.
        for lo in range(0, len(candidates), PREFETCH_WAVE):
            ev.prefetch_profiles(candidates[lo : lo + PREFETCH_WAVE])
        best_plan: Optional[DeploymentPlan] = None
        best_metric = float("inf")
        for plan in candidates:
            if enforce_tolerances and ev.tolerance_violated(plan, hour):
                continue
            metric = ev.metric(plan, hour)
            if metric < best_metric:
                best_plan, best_metric = plan, metric
        if best_plan is None:
            # Every plan violates tolerances: fall back to home (§6.1).
            best_plan = ev.home_plan()
        ev.stats.bump(wall_time_s=time.perf_counter() - start_time)
        return best_plan, ev.estimate(best_plan, hour)

    def solve_day(
        self,
        hours: Optional[Sequence[int]] = None,
        enforce_tolerances: bool = True,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> HourlyPlanSet:
        """Exact per-hour optima over the day, optionally fanned over a
        worker pool (``jobs``; ``None`` defers to
        ``settings.parallel_hours``; ``backend`` defaults to
        ``settings.parallel_backend``) — the enumeration is
        deterministic and the shared evaluator order-independent, so any
        worker count or backend returns the identical set."""
        hour_list = list(hours) if hours is not None else list(range(24))
        if not hour_list:
            raise ValueError("need at least one hour to solve for")
        if backend is None:
            backend = self._ev.settings.parallel_backend
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        n_jobs = resolve_jobs(
            jobs, self._ev.settings.parallel_hours, len(hour_list)
        )
        if n_jobs <= 1:
            plans = [
                self.solve_hour(h, enforce_tolerances)[0] for h in hour_list
            ]
        elif backend == "process":
            outputs = process_map(
                self._hour_task,
                [(h, enforce_tolerances) for h in hour_list],
                n_jobs,
            )
            plans = []
            for plan, deltas in outputs:
                if deltas:
                    self._ev.stats.bump(**deltas)
                plans.append(plan)
        else:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                plans = list(
                    pool.map(
                        lambda h: self.solve_hour(h, enforce_tolerances)[0],
                        hour_list,
                    )
                )
        return HourlyPlanSet(dict(zip(hour_list, plans)))

    def _hour_task(self, task: Tuple[int, bool]):
        """Process-pool work unit (forked child): winning plan plus a
        plain counter-delta dict (``SolverStats`` is not picklable)."""
        hour, enforce_tolerances = task
        before = self._ev.stats.snapshot()
        plan = self.solve_hour(hour, enforce_tolerances)[0]
        after = self._ev.stats.snapshot()
        deltas = {
            name: after[name] - before[name]
            for name in after
            if after[name] != before[name]
        }
        return plan, deltas
