"""Heuristic-Biased Stochastic Sampling solver (paper Alg. 1).

HBSS explores the ``|R|^|N|`` deployment space by mutating the current
deployment with a *biased* region choice and accepting candidates that
improve the target metric — or, stochastically, ones that do not
(``Mut``), with a temperature ``gamma`` decayed by 0.99 per accepted
move.  The iteration budget is ``alpha = |N| x |R| x 6``, and the search
also terminates on complete exploration of the space (Alg. 1 line 9).

Two departures from the paper's terse pseudo-code are documented here:

* ``Mut`` computes ``delta = gamma * |CD.metric - ND.metric|``; we
  normalise the difference by ``CD.metric`` so acceptance probability is
  scale-free (the raw metric is in grams/USD/seconds whose magnitude
  varies by orders of magnitude between workflows).
* The region bias ("leveraging the information obtained as a region
  bias") is made concrete: candidate regions are drawn with weight
  ``(1 + accepted_count[r]) / intensity(r)`` — greener regions and
  regions that previously produced accepted deployments are preferred —
  with probability ``beta`` of an unbiased uniform draw.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.solver.evaluation import PlanEvaluator
from repro.metrics.montecarlo import WorkflowEstimate
from repro.model.plan import DeploymentPlan, HourlyPlanSet
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.profile import profiled_phase
from repro.obs.trace import NULL_TRACER, Tracer


@dataclass
class SolveResult:
    """Outcome of one per-hour HBSS run.

    ``plans_evaluated`` counts *distinct* deployments the run examined —
    accepted, rejected, and tolerance-violating alike — i.e. the size of
    Alg. 1's ``Deployments`` memo, which is also what the
    complete-exploration termination (line 9) compares against the
    search-space size.
    """

    hour: int
    best_plan: DeploymentPlan
    best_estimate: WorkflowEstimate
    iterations: int
    accepted: int
    plans_evaluated: int

    @property
    def feasible_found(self) -> int:
        """Deprecated alias for :attr:`plans_evaluated` (the old name
        suggested only accepted plans were counted, which was the bug)."""
        warnings.warn(
            "SolveResult.feasible_found is deprecated; use plans_evaluated",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.plans_evaluated

    @property
    def offloaded_nodes(self) -> Tuple[str, ...]:
        """Nodes the best plan places away from the plan's modal region
        — a quick signal of fine-grained behaviour."""
        regions = list(self.best_plan.assignments.values())
        modal = max(set(regions), key=regions.count)
        return tuple(
            sorted(
                n
                for n, r in self.best_plan.assignments.items()
                if r != modal
            )
        )


class HBSSSolver:
    """Alg. 1, parameterised by a :class:`PlanEvaluator`."""

    def __init__(
        self,
        evaluator: PlanEvaluator,
        rng: np.random.Generator,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._ev = evaluator
        self._rng = rng
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS

    # -- public API ------------------------------------------------------------
    def solve_hour(self, hour: int) -> SolveResult:
        """Find the best deployment plan for one hour of the day."""
        with self._tracer.span("solver_hour", f"hour={hour}", hour=hour) as scope:
            with profiled_phase("solver.solve_hour"):
                result = self._solve_hour(hour)
            scope.set(
                iterations=result.iterations,
                accepted=result.accepted,
                plans_evaluated=result.plans_evaluated,
            )
        self._metrics.counter("solver.hours_solved").inc()
        self._metrics.counter("solver.iterations").inc(result.iterations)
        self._metrics.counter("solver.accepted").inc(result.accepted)
        self._metrics.counter("solver.plans_evaluated").inc(
            result.plans_evaluated
        )
        return result

    def _solve_hour(self, hour: int) -> SolveResult:
        start_time = time.perf_counter()
        ev = self._ev
        dag = ev.dag
        settings = ev.settings
        nodes = dag.node_names
        n_regions = len(ev.regions)
        alpha = len(nodes) * n_regions * settings.alpha_per_node_region
        space = ev.search_space_size()

        home = ev.home_plan()
        current = home
        current_metric = ev.metric(current, hour)
        gamma = settings.gamma

        accepted_regions: Dict[str, int] = {r: 0 for r in ev.regions}
        # Memo of *every* distinct deployment examined — accepted or not
        # — so complete exploration (Alg. 1 line 9) can actually fire.
        # Tolerance violators are memoized as +inf: evaluated, never a
        # candidate for "best".
        deployments: Dict[DeploymentPlan, float] = {home: current_metric}
        best_plan, best_metric = current, current_metric

        iterations = 0
        accepted = 0
        while iterations < alpha and len(deployments) < space:
            candidate = self._gen_new_deployment_with_bias(
                current, hour, accepted_regions
            )
            iterations += 1
            if candidate in deployments:
                continue
            if ev.tolerance_violated(candidate, hour):
                deployments[candidate] = math.inf
                continue
            metric = ev.metric(candidate, hour)
            deployments[candidate] = metric
            took = metric < current_metric or self._mut(
                gamma, current_metric, metric
            )
            if self._tracer.enabled:
                self._tracer.record(
                    "solver_iteration",
                    f"hour={hour}#{iterations}",
                    hour=hour,
                    iteration=iterations,
                    metric=metric,
                    accepted=took,
                )
            if took:
                current, current_metric = candidate, metric
                gamma *= ev.settings.gamma_decay
                accepted += 1
                for region in set(candidate.assignments.values()):
                    accepted_regions[region] = accepted_regions.get(region, 0) + 1
                if metric < best_metric:
                    best_plan, best_metric = candidate, metric

        ev.stats.wall_time_s += time.perf_counter() - start_time
        return SolveResult(
            hour=hour,
            best_plan=best_plan,
            best_estimate=ev.estimate(best_plan, hour),
            iterations=iterations,
            accepted=accepted,
            plans_evaluated=len(deployments),
        )

    def solve_day(
        self, hours: Optional[Sequence[int]] = None
    ) -> Tuple[HourlyPlanSet, List[SolveResult]]:
        """Generate plans for each requested hour (§5.1: "24 plans are
        generated per solve — one for each hour, given sufficient carbon
        budget").  Pass fewer hours (e.g. ``[0]``) for the degraded
        daily granularity of §5.2."""
        hour_list = list(hours) if hours is not None else list(range(24))
        if not hour_list:
            raise ValueError("need at least one hour to solve for")
        with self._tracer.span(
            "solve", f"hours={len(hour_list)}", n_hours=len(hour_list)
        ) as scope, profiled_phase("solver.solve_day"):
            results = [self.solve_hour(h) for h in hour_list]
            scope.set(
                iterations=sum(r.iterations for r in results),
                accepted=sum(r.accepted for r in results),
            )
        self._metrics.counter("solver.solves").inc()
        plans = {res.hour: res.best_plan for res in results}
        return HourlyPlanSet(plans), results

    # -- Alg. 1 internals ---------------------------------------------------------
    def _gen_new_deployment_with_bias(
        self,
        current: DeploymentPlan,
        hour: int,
        accepted_regions: Dict[str, int],
    ) -> DeploymentPlan:
        """``GenNewDeplWBias``: mutate 1-2 node assignments with a
        carbon-and-history-biased region draw."""
        ev = self._ev
        rng = self._rng
        assignments = dict(current.assignments)
        nodes = ev.dag.node_names
        n_mutations = 1 if rng.random() < 0.7 else min(2, len(nodes))
        chosen = rng.choice(len(nodes), size=n_mutations, replace=False)
        for idx in np.atleast_1d(chosen):
            node = nodes[int(idx)]
            options = ev.permitted_regions(node)
            if len(options) == 1:
                assignments[node] = options[0]
                continue
            if rng.random() < ev.settings.beta:
                assignments[node] = options[int(rng.integers(len(options)))]
            else:
                weights = np.array(
                    [
                        (1.0 + accepted_regions.get(r, 0))
                        / max(1.0, self._intensity(r, hour))
                        for r in options
                    ]
                )
                weights /= weights.sum()
                assignments[node] = options[int(rng.choice(len(options), p=weights))]
        return DeploymentPlan(assignments)

    def _intensity(self, region: str, hour: int) -> float:
        return self._ev._intensity_fn(region, hour)

    def _mut(self, gamma: float, current_metric: float, new_metric: float) -> bool:
        """``Mut``: stochastic acceptance of a non-improving move.

        The 0.5 factor caps acceptance of equal-metric moves at 50 % —
        with the paper's bare ``Random < e^(-delta)`` a tiny delta would
        accept nearly every regression and the walk would never settle.
        """
        scale = abs(current_metric) if current_metric != 0 else 1.0
        delta = gamma * abs(current_metric - new_metric) / scale
        return bool(self._rng.random() < math.exp(-delta) * 0.5)
