"""Heuristic-Biased Stochastic Sampling solver (paper Alg. 1).

HBSS explores the ``|R|^|N|`` deployment space by mutating the current
deployment with a *biased* region choice and accepting candidates that
improve the target metric — or, stochastically, ones that do not
(``Mut``), with a temperature ``gamma`` decayed by 0.99 per accepted
move.  The iteration budget is ``alpha = |N| x |R| x 6``, and the search
also terminates on complete exploration of the space (Alg. 1 line 9).

Two departures from the paper's terse pseudo-code are documented here:

* ``Mut`` computes ``delta = gamma * |CD.metric - ND.metric|``; we
  normalise the difference by ``CD.metric`` so acceptance probability is
  scale-free (the raw metric is in grams/USD/seconds whose magnitude
  varies by orders of magnitude between workflows).
* The region bias ("leveraging the information obtained as a region
  bias") is made concrete: candidate regions are drawn with weight
  ``(1 + accepted_count[r]) / intensity(r)`` — greener regions and
  regions that previously produced accepted deployments are preferred —
  with probability ``beta`` of an unbiased uniform draw.

Determinism under parallelism
-----------------------------
The 24 per-hour solves of a day are independent, so ``solve_day`` can
fan them over a thread pool (``SolverSettings.parallel_hours`` /
``jobs``).  Three mechanisms make the parallel result *identical* to the
serial reference, not merely statistically equivalent:

1. **Per-hour RNG substreams.** Each hour's walk draws from its own
   generator — either ``rng_factory(hour)`` (the Deployment Manager
   passes the registry stream ``solver:{workflow}:hour={h}``) or a
   substream derived from a constructor-drawn salt and a per-solve
   epoch.  No hour's draws depend on when any other hour runs.
2. **Order-independent evaluation.** The shared
   :class:`~repro.core.solver.evaluation.PlanEvaluator` is thread-safe
   and the Monte-Carlo estimator simulates every plan from a substream
   keyed by the plan's digest, so cache warm-up order cannot perturb
   any cached value.
3. **Deferred observability.** Workers never touch the shared tracer or
   metrics registry; they return their iteration events, which are
   replayed in hour order after the pool drains.  The virtual clock is
   frozen while solving, so the replayed spans are byte-identical to
   inline serial recording.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.common.rng import derive_seed
from repro.core.solver.evaluation import PlanEvaluator
from repro.core.solver.parallel import process_map
from repro.metrics.montecarlo import WorkflowEstimate
from repro.model.plan import DeploymentPlan, HourlyPlanSet
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.profile import profiled_phase
from repro.obs.trace import NULL_TRACER, Tracer

#: One collected iteration event: (span name, span attributes).
_IterationEvent = Tuple[str, Dict[str, object]]


@dataclass
class SolveResult:
    """Outcome of one per-hour HBSS run.

    ``plans_evaluated`` counts *distinct* deployments the run examined —
    accepted, rejected, and tolerance-violating alike — i.e. the size of
    Alg. 1's ``Deployments`` memo, which is also what the
    complete-exploration termination (line 9) compares against the
    search-space size.
    """

    hour: int
    best_plan: DeploymentPlan
    best_estimate: WorkflowEstimate
    iterations: int
    accepted: int
    plans_evaluated: int

    @property
    def feasible_found(self) -> int:
        """Deprecated alias for :attr:`plans_evaluated` (the old name
        suggested only accepted plans were counted, which was the bug)."""
        warnings.warn(
            "SolveResult.feasible_found is deprecated; use plans_evaluated",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.plans_evaluated

    @property
    def offloaded_nodes(self) -> Tuple[str, ...]:
        """Nodes the best plan places away from the plan's modal region
        — a quick signal of fine-grained behaviour.  Modal-count ties
        break lexicographically: iterating a set would make the winner
        (and thus reports) depend on PYTHONHASHSEED."""
        regions = list(self.best_plan.assignments.values())
        modal = min(set(regions), key=lambda r: (-regions.count(r), r))
        return tuple(
            sorted(
                n
                for n, r in self.best_plan.assignments.items()
                if r != modal
            )
        )


def resolve_jobs(jobs: Optional[int], default: int, n_tasks: int) -> int:
    """Normalise a worker-count knob: ``None`` defers to ``default``,
    ``0`` means one worker per CPU, and the result is clamped to
    ``[1, n_tasks]``."""
    if jobs is None:
        jobs = default
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(int(jobs), max(1, n_tasks)))


class HBSSSolver:
    """Alg. 1, parameterised by a :class:`PlanEvaluator`."""

    def __init__(
        self,
        evaluator: PlanEvaluator,
        rng: np.random.Generator,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        rng_factory: Optional[Callable[[int], np.random.Generator]] = None,
    ):
        """Args:
        evaluator: Shared (thread-safe) plan evaluator.
        rng: Solver-owned stream.  One salt is drawn from it up front;
            when ``rng_factory`` is omitted, each hour's walk runs on a
            substream derived from that salt, the solve epoch, and the
            hour, so repeated solves still explore differently while
            hours stay independent of scheduling order.
        tracer / metrics: Observability sinks (no-ops by default).
        rng_factory: ``hour -> Generator`` override for callers that
            manage named streams themselves — the Deployment Manager
            passes ``lambda h: registry.get(f"solver:{wf}:hour={h}")``
            so per-hour streams persist (and keep advancing) across
            token checks.
        """
        self._ev = evaluator
        self._rng = rng
        self._hour_salt = int(rng.integers(0, 2**63 - 1))
        self._rng_factory = rng_factory
        self._solves = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS

    # -- public API ------------------------------------------------------------
    def solve_hour(
        self, hour: int, warm_start_plan: Optional[DeploymentPlan] = None
    ) -> SolveResult:
        """Find the best deployment plan for one hour of the day."""
        self._solves += 1
        result, events = self._solve_hour(
            hour, self._rng_for_hour(hour), warm_start_plan
        )
        return self._emit_hour(result, events)

    def solve_day(
        self,
        hours: Optional[Sequence[int]] = None,
        jobs: Optional[int] = None,
        warm_start: Optional[HourlyPlanSet] = None,
        backend: Optional[str] = None,
    ) -> Tuple[HourlyPlanSet, List[SolveResult]]:
        """Generate plans for each requested hour (§5.1: "24 plans are
        generated per solve — one for each hour, given sufficient carbon
        budget").  Pass fewer hours (e.g. ``[0]``) for the degraded
        daily granularity of §5.2.

        Args:
            hours: Hours of the day to solve for (default: all 24).
            jobs: Workers for the hour fan-out.  ``None`` defers to
                ``settings.parallel_hours``, ``0`` means one per CPU,
                ``1`` is the serial reference path.  Any value returns
                the identical plan set (see the module docstring).
            warm_start: Previous plan set to seed each hour's walk from
                (§5.2's checks re-solve a barely-moved problem) — each
                hour starts at ``warm_start.plan_for_hour(h)`` when that
                plan is still compliant, falling back to home.
            backend: ``"thread"`` or ``"process"`` (``None`` defers to
                ``settings.parallel_backend``).  The process backend
                forks true-multicore workers (see
                :mod:`repro.core.solver.parallel`): per-hour tasks and
                results are picklable, worker RNG states are merged back
                into the per-hour streams, and counter deltas are summed
                into the shared stats — the plan set stays bit-identical
                to serial.
        """
        hour_list = list(hours) if hours is not None else list(range(24))
        if not hour_list:
            raise ValueError("need at least one hour to solve for")
        if backend is None:
            backend = self._ev.settings.parallel_backend
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        self._solves += 1
        n_jobs = resolve_jobs(
            jobs, self._ev.settings.parallel_hours, len(hour_list)
        )
        # Materialise each hour's substream and warm start up front, in
        # hour order, so neither depends on worker scheduling.
        tasks = [
            (
                h,
                self._rng_for_hour(h),
                warm_start.plan_for_hour(h % 24)
                if warm_start is not None
                else None,
            )
            for h in hour_list
        ]
        with self._tracer.span(
            "solve", f"hours={len(hour_list)}", n_hours=len(hour_list)
        ) as scope, profiled_phase("solver.solve_day"):
            if n_jobs <= 1:
                collected = [self._solve_hour(*task) for task in tasks]
            elif backend == "process":
                collected = self._solve_day_process(tasks, n_jobs)
            else:
                with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                    collected = list(
                        pool.map(lambda task: self._solve_hour(*task), tasks)
                    )
            # Replay per-hour spans/metrics in hour order — the virtual
            # clock did not advance while solving, so this is
            # byte-identical to inline serial recording.
            results = [
                self._emit_hour(result, events)
                for result, events in collected
            ]
            scope.set(
                iterations=sum(r.iterations for r in results),
                accepted=sum(r.accepted for r in results),
            )
        self._metrics.counter("solver.solves").inc()
        plans = {res.hour: res.best_plan for res in results}
        return HourlyPlanSet(plans), results

    # -- per-hour plumbing ------------------------------------------------------
    def _solve_day_process(
        self,
        tasks: List[Tuple[int, np.random.Generator, Optional[DeploymentPlan]]],
        n_jobs: int,
    ) -> List[Tuple[SolveResult, List[_IterationEvent]]]:
        """Fan the per-hour tasks over a fork-based process pool.

        Workers inherit the whole solver by fork (nothing unpicklable
        crosses the boundary) and return, per hour: the result, its
        deferred events, the final state of the hour's RNG, and a
        counter-delta dict.  The parent then (a) advances its own
        per-hour registry streams to the returned states — so a later
        serial solve continues from exactly where a serial run would
        have — and (b) sums the deltas into the shared stats.
        """
        outputs = process_map(self._solve_hour_task, tasks, n_jobs)
        collected = []
        for (hour, _rng, _warm), out in zip(tasks, outputs):
            result, events, rng_state, deltas = out
            if self._rng_factory is not None:
                # The worker advanced a pickled *copy* of the hour's
                # stream; mirror its final state onto the parent's.
                self._rng_factory(hour).bit_generator.state = rng_state
            if deltas:
                self._ev.stats.bump(**deltas)
            collected.append((result, events))
        return collected

    def _solve_hour_task(
        self,
        task: Tuple[int, np.random.Generator, Optional[DeploymentPlan]],
    ) -> Tuple[SolveResult, List[_IterationEvent], dict, Dict[str, float]]:
        """Process-pool work unit (runs in a forked child)."""
        hour, rng, warm_start_plan = task
        before = self._ev.stats.snapshot()
        result, events = self._solve_hour(hour, rng, warm_start_plan)
        after = self._ev.stats.snapshot()
        deltas = {
            name: after[name] - before[name]
            for name in after
            if after[name] != before[name]
        }
        return result, events, rng.bit_generator.state, deltas

    def _rng_for_hour(self, hour: int) -> np.random.Generator:
        if self._rng_factory is not None:
            return self._rng_factory(hour)
        return np.random.default_rng(
            derive_seed(self._hour_salt, f"solve={self._solves}:hour={hour}")
        )

    def _emit_hour(
        self, result: SolveResult, events: List[_IterationEvent]
    ) -> SolveResult:
        """Record one finished hour's spans and counters (main thread)."""
        with self._tracer.span(
            "solver_hour", f"hour={result.hour}", hour=result.hour
        ) as scope:
            for name, attrs in events:
                self._tracer.record("solver_iteration", name, **attrs)
            scope.set(
                iterations=result.iterations,
                accepted=result.accepted,
                plans_evaluated=result.plans_evaluated,
            )
        self._metrics.counter("solver.hours_solved").inc()
        self._metrics.counter("solver.iterations").inc(result.iterations)
        self._metrics.counter("solver.accepted").inc(result.accepted)
        self._metrics.counter("solver.plans_evaluated").inc(
            result.plans_evaluated
        )
        return result

    def _solve_hour(
        self,
        hour: int,
        rng: np.random.Generator,
        warm_start_plan: Optional[DeploymentPlan] = None,
    ) -> Tuple[SolveResult, List[_IterationEvent]]:
        """One hour's HBSS walk.  Runs on a worker thread during a
        parallel ``solve_day``: touches only the (thread-safe) evaluator
        and its own ``rng``, and returns iteration events instead of
        recording them."""
        start_time = time.perf_counter()
        events: List[_IterationEvent] = []
        with profiled_phase("solver.solve_hour"):
            ev = self._ev
            dag = ev.dag
            settings = ev.settings
            nodes = dag.node_names
            n_regions = len(ev.regions)
            alpha = len(nodes) * n_regions * settings.alpha_per_node_region
            space = ev.search_space_size()

            home = ev.home_plan()
            current = home
            current_metric = ev.metric(current, hour)
            gamma = settings.gamma

            accepted_regions: Dict[str, int] = {r: 0 for r in ev.regions}
            # Memo of *every* distinct deployment examined — accepted or
            # not — so complete exploration (Alg. 1 line 9) can actually
            # fire.  Tolerance violators are memoized as +inf: evaluated,
            # never a candidate for "best".
            deployments: Dict[DeploymentPlan, float] = {home: current_metric}
            best_plan, best_metric = current, current_metric

            # Warm start (§5.2 re-solves a barely-moved problem): begin
            # the walk at the previous plan set's plan for this hour when
            # it is still usable; home remains the evaluated QoS anchor.
            if (
                warm_start_plan is not None
                and warm_start_plan != home
                and warm_start_plan.covers(dag)
                and ev.is_plan_compliant(warm_start_plan)
            ):
                if ev.tolerance_violated(warm_start_plan, hour):
                    deployments[warm_start_plan] = math.inf
                else:
                    warm_metric = ev.metric(warm_start_plan, hour)
                    deployments[warm_start_plan] = warm_metric
                    current, current_metric = warm_start_plan, warm_metric
                    if warm_metric < best_metric:
                        best_plan, best_metric = warm_start_plan, warm_metric

            iterations = 0
            accepted = 0
            wave_size = settings.wave_size
            # The walk proceeds in waves: generate ``wave_size``
            # candidates from the current state, evaluate, then run the
            # serial acceptance pass over them.  ``wave_size=1`` is
            # exactly Alg. 1's generate-then-accept trajectory (same
            # draws in the same order); larger waves prefetch their
            # fresh candidates through the cross-plan batched kernel
            # (profile values are bit-identical to per-plan builds, so
            # batched on/off cannot change the trajectory — only waves
            # greater than one are a distinct search variant).
            while iterations < alpha and len(deployments) < space:
                wave: List[Tuple[DeploymentPlan, int]] = []
                while len(wave) < wave_size and iterations < alpha:
                    candidate = self._gen_new_deployment_with_bias(
                        current, hour, accepted_regions, rng
                    )
                    iterations += 1
                    wave.append((candidate, iterations))
                if wave_size > 1:
                    fresh = [
                        cand for cand, _ in wave if cand not in deployments
                    ]
                    if len(fresh) > 1:
                        ev.prefetch_profiles(fresh)
                for candidate, iteration in wave:
                    if len(deployments) >= space:
                        break
                    if candidate in deployments:
                        continue
                    if ev.tolerance_violated(candidate, hour):
                        deployments[candidate] = math.inf
                        continue
                    metric = ev.metric(candidate, hour)
                    deployments[candidate] = metric
                    took = metric < current_metric or self._mut(
                        gamma, current_metric, metric, rng
                    )
                    if self._tracer.enabled:
                        events.append(
                            (
                                f"hour={hour}#{iteration}",
                                {
                                    "hour": hour,
                                    "iteration": iteration,
                                    "metric": metric,
                                    "accepted": took,
                                },
                            )
                        )
                    if took:
                        current, current_metric = candidate, metric
                        gamma *= ev.settings.gamma_decay
                        accepted += 1
                        for region in set(candidate.assignments.values()):
                            accepted_regions[region] = (
                                accepted_regions.get(region, 0) + 1
                            )
                        if metric < best_metric:
                            best_plan, best_metric = candidate, metric

            result = SolveResult(
                hour=hour,
                best_plan=best_plan,
                best_estimate=ev.estimate(best_plan, hour),
                iterations=iterations,
                accepted=accepted,
                plans_evaluated=len(deployments),
            )
        ev.stats.bump(wall_time_s=time.perf_counter() - start_time)
        return result, events

    # -- Alg. 1 internals ---------------------------------------------------------
    def _gen_new_deployment_with_bias(
        self,
        current: DeploymentPlan,
        hour: int,
        accepted_regions: Dict[str, int],
        rng: np.random.Generator,
    ) -> DeploymentPlan:
        """``GenNewDeplWBias``: mutate 1-2 node assignments with a
        carbon-and-history-biased region draw."""
        ev = self._ev
        assignments = dict(current.assignments)
        nodes = ev.dag.node_names
        n_mutations = 1 if rng.random() < 0.7 else min(2, len(nodes))
        chosen = rng.choice(len(nodes), size=n_mutations, replace=False)
        for idx in np.atleast_1d(chosen):
            node = nodes[int(idx)]
            options = ev.permitted_regions(node)
            if len(options) == 1:
                assignments[node] = options[0]
                continue
            if rng.random() < ev.settings.beta:
                assignments[node] = options[int(rng.integers(len(options)))]
            else:
                weights = np.array(
                    [
                        (1.0 + accepted_regions.get(r, 0))
                        / max(1.0, self._intensity(r, hour))
                        for r in options
                    ]
                )
                weights /= weights.sum()
                assignments[node] = options[int(rng.choice(len(options), p=weights))]
        return DeploymentPlan(assignments)

    def _intensity(self, region: str, hour: int) -> float:
        return self._ev._intensity_fn(region, hour)

    def _mut(
        self,
        gamma: float,
        current_metric: float,
        new_metric: float,
        rng: np.random.Generator,
    ) -> bool:
        """``Mut``: stochastic acceptance of a non-improving move.

        The 0.5 factor caps acceptance of equal-metric moves at 50 % —
        with the paper's bare ``Random < e^(-delta)`` a tiny delta would
        accept nearly every regression and the walk would never settle.
        """
        scale = abs(current_metric) if current_metric != 0 else 1.0
        delta = gamma * abs(current_metric - new_metric) / scale
        return bool(rng.random() < math.exp(-delta) * 0.5)
