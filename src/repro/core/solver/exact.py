"""Exact branch-and-bound deployment search (ROADMAP item 5).

Best-first branch-and-bound over per-node region choices.  States are
prefixes of the DAG's (lexicographic) topological order; expanding a
state assigns the next node to each of its permitted regions.  Each
state carries an *admissible* lower bound on the objective of every
completion, so popping a state whose bound already meets the incumbent
proves the incumbent optimal — typically after exploring a vanishing
fraction of the ``prod_n |permitted(n)|`` space, which makes mid-size
DAGs (10^8-10^9 plans) tractable where :class:`ExhaustiveSolver`
refuses anything past 100k.

Bounding function
-----------------

The objective is an empirical Monte-Carlo mean, so the bound must hold
for *every sample* regardless of what the per-plan RNG substream draws.
:class:`LowerBoundTables` therefore prices each contribution at the
minimum of its empirical support (``EmpiricalDistribution.min()``)
through the deterministic pricing formulas — all of which are monotone
non-decreasing in duration/bytes — and drops any contribution that is
not *guaranteed* to occur (conditional edges and every node downstream
of only-conditional paths price as 0, an obvious under-estimate):

* decided nodes contribute their exact minimum-support terms (execution
  energy x intensity, execution cost, KV reads, external-data and
  client-input transfers, and in-edge transfer/messaging/sync-relay
  terms once both endpoints are decided);
* undecided nodes contribute a precomputed per-node floor: each term
  minimised *independently* over the node's (and its predecessors')
  permitted regions — a sum of independent minima never exceeds the
  joint minimum, so admissibility is preserved;
* a latency floor runs the same critical-path recurrence the simulator
  uses, over guaranteed edges only, with minimum durations and transfer
  latencies.

Only the carbon terms depend on the hour (through the intensity
function); the cost and latency tables are built once per evaluator and
a thin per-hour carbon layer is cached on demand.

Tolerances prune alongside the objective: a state whose carbon / cost /
latency floor already exceeds the §9.4 augmented-baseline threshold
cannot complete into a compliant plan (the p95 tail of any completion
is at least the per-sample floor) and is cut.  Complete plans still go
through the evaluator's exact Monte-Carlo tolerance check, so the
returned plan is precisely the best plan ``ExhaustiveSolver`` would
have kept — bit-identical metric, same home fallback when nothing is
feasible.

Floating-point note: the bound accumulates the same IEEE-754 terms the
kernel does but in a different association order, so every prune
comparison scales the bound by ``BOUND_SAFETY`` (one part in 10^9) —
far larger than any rounding drift, far too small to cost pruning
power.
"""

from __future__ import annotations

import heapq
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SolverError
from repro.core.solver.evaluation import PlanEvaluator
from repro.core.solver.hbss import resolve_jobs
from repro.core.solver.parallel import process_map
from repro.metrics.montecarlo import WorkflowEstimate
from repro.model.plan import DeploymentPlan, HourlyPlanSet
from repro.obs.profile import profiled_phase

#: Relative slack applied to every lower bound before a prune
#: comparison: absorbs float re-association drift between the bound's
#: accumulation order and the kernel's.
BOUND_SAFETY = 1.0 - 1e-9

#: Refuse searches that expand more states than this — the bound has
#: degenerated (e.g. near-identical regions) and exhaustive-like work
#: is exactly what this solver exists to avoid.
DEFAULT_MAX_EXPANSIONS = 1_000_000


def _dist_min(dist) -> float:
    """Support minimum of an empirical distribution, 0 when empty."""
    if len(dist) == 0:
        return 0.0
    return max(0.0, dist.min())


class _HourLayer:
    """Per-hour carbon tables layered over the hour-independent core."""

    __slots__ = ("exec_carbon", "edge_carbon", "edge_carbon_min", "suffix_carbon")

    def __init__(self) -> None:
        self.exec_carbon: List[Dict[str, float]] = []
        self.edge_carbon: Dict[Tuple[int, int], Dict[Tuple[str, str], float]] = {}
        self.edge_carbon_min: Dict[Tuple[int, int], Dict[str, float]] = {}
        self.suffix_carbon: List[float] = []


class LowerBoundTables:
    """Admissible per-sample lower-bound tables for one evaluator.

    Shared by :class:`ExactSolver` (incremental prefix bounds) and
    :class:`~repro.core.solver.exhaustive.ExhaustiveSolver` (whole-plan
    bounds used to skip provably tolerance-dead plans before they are
    simulated).  Construction runs no Monte-Carlo simulation — only
    support minima and deterministic pricing lookups.
    """

    def __init__(self, evaluator: PlanEvaluator):
        ev = self._ev = evaluator
        dag = ev.dag
        self.order: Tuple[str, ...] = tuple(dag.topological_order())
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.order)}
        #: Sorted domains: child-generation order is independent of the
        #: iteration order of the evaluator's ``regions`` input.
        self.domains: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(sorted(ev.permitted_regions(n))) for n in self.order
        )
        data = ev.data
        cost = ev.cost_model
        carbon = ev.carbon_model
        latency = ev.latency_model
        kv = ev.kv_region
        client = ev.client_region

        # Guaranteed-execution analysis: a node runs in *every* sample
        # iff it is the start node or has an unconditional in-edge from
        # a guaranteed node.  Only guaranteed contributions may enter
        # the bound; everything else prices as 0.
        guaranteed = set()
        for name in self.order:
            ins = dag.in_edges(name)
            if not ins:
                guaranteed.add(name)
            elif any(
                (not e.conditional) and e.src in guaranteed for e in ins
            ):
                guaranteed.add(name)
        self.guaranteed = frozenset(guaranteed)
        self.guaranteed_in_edges: Tuple[Tuple, ...] = tuple(
            tuple(
                e
                for e in dag.in_edges(name)
                if not e.conditional and e.src in guaranteed
            )
            if name in guaranteed
            else ()
            for name in self.order
        )

        input_min = _dist_min(data.input_size_dist())
        self._start_index = self.index[dag.start_node]

        # Per-(node, region) hour-independent tables.
        self.dur_min: List[Dict[str, float]] = []
        self.energy_min: List[Dict[str, float]] = []
        self.exec_cost_min: List[Dict[str, float]] = []
        self.arrive_lat: List[Dict[str, float]] = []  # start node only
        self._ext: List[Tuple[Optional[str], float]] = []
        for i, name in enumerate(self.order):
            memory = data.node_memory_mb(name)
            n_vcpu = data.node_vcpu(name)
            util = data.node_cpu_utilization(name)
            ext_region, ext_bytes = data.node_external_bytes(name)
            if ext_region is None or ext_bytes <= 0:
                ext_region, ext_bytes = None, 0.0
            self._ext.append((ext_region, ext_bytes))
            durs: Dict[str, float] = {}
            energies: Dict[str, float] = {}
            costs: Dict[str, float] = {}
            arrives: Dict[str, float] = {}
            kv_read = cost.kv_cost(kv, n_reads=1)
            for r in self.domains[i]:
                dur = _dist_min(data.execution_time_dist(name, r))
                if ext_region is not None:
                    dur += latency.estimate(ext_region, r, ext_bytes)
                durs[r] = dur
                if dur > 0 and n_vcpu > 0:
                    energies[r] = (
                        carbon.execution_energy_kwh(
                            duration_s=dur,
                            memory_mb=memory,
                            n_vcpu=n_vcpu,
                            cpu_total_time_s=dur * n_vcpu * util,
                        )
                        * carbon.pue
                    )
                else:
                    energies[r] = 0.0
                c = cost.execution_cost(r, dur, memory) + kv_read
                if ext_region is not None:
                    c += cost.transmission_cost(ext_region, r, ext_bytes)
                if i == self._start_index:
                    c += cost.transmission_cost(client, r, input_min)
                    arrives[r] = latency.estimate(client, r, input_min)
                costs[r] = c
            self.dur_min.append(durs)
            self.energy_min.append(energies)
            self.exec_cost_min.append(costs)
            self.arrive_lat.append(arrives)

        # Per guaranteed-edge (src_region, dst_region) tables.
        self.edge_bytes_min: Dict[Tuple[int, int], float] = {}
        self.edge_sync: Dict[Tuple[int, int], bool] = {}
        self.edge_cost: Dict[Tuple[int, int], Dict[Tuple[str, str], float]] = {}
        self.edge_lat: Dict[Tuple[int, int], Dict[Tuple[str, str], float]] = {}
        self.edge_cost_min: Dict[Tuple[int, int], Dict[str, float]] = {}
        for i, name in enumerate(self.order):
            is_sync = dag.is_sync_node(name)
            for e in self.guaranteed_in_edges[i]:
                u = self.index[e.src]
                key = (u, i)
                bmin = _dist_min(data.edge_size_dist(e.src, e.dst))
                self.edge_bytes_min[key] = bmin
                self.edge_sync[key] = is_sync
                kv_relay = cost.kv_cost(kv, n_reads=1, n_writes=2)
                ec: Dict[Tuple[str, str], float] = {}
                el: Dict[Tuple[str, str], float] = {}
                for ru in self.domains[u]:
                    for rv in self.domains[i]:
                        msg = cost.messaging_cost(rv)
                        if is_sync:
                            c = (
                                cost.transmission_cost(ru, kv, bmin)
                                + cost.transmission_cost(kv, rv, bmin)
                                + kv_relay
                                + msg
                            )
                            lat = latency.estimate(
                                ru, kv, bmin
                            ) + latency.estimate(kv, rv, bmin)
                        else:
                            c = cost.transmission_cost(ru, rv, bmin) + msg
                            lat = latency.estimate(ru, rv, bmin)
                        ec[(ru, rv)] = c
                        el[(ru, rv)] = lat
                self.edge_cost[key] = ec
                self.edge_lat[key] = el
                self.edge_cost_min[key] = {
                    rv: min(ec[(ru, rv)] for ru in self.domains[u])
                    for rv in self.domains[i]
                }

        # Hour-independent per-node cost floor and suffix sums.
        n = len(self.order)
        self.node_cost_min: List[float] = []
        for i in range(n):
            if self.order[i] not in self.guaranteed:
                self.node_cost_min.append(0.0)
                continue
            best = float("inf")
            for r in self.domains[i]:
                term = self.exec_cost_min[i][r]
                for e in self.guaranteed_in_edges[i]:
                    term += self.edge_cost_min[(self.index[e.src], i)][r]
                best = min(best, term)
            self.node_cost_min.append(best)
        self.suffix_cost: List[float] = [0.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            self.suffix_cost[i] = self.suffix_cost[i + 1] + self.node_cost_min[i]

        # Regions the carbon layer needs intensities for.
        extra = {kv, client}
        extra.update(r for r, _ in self._ext if r is not None)
        self._all_regions = tuple(
            sorted(set(itertools.chain.from_iterable(self.domains)) | extra)
        )
        self._kv = kv
        self._client = client
        self._input_min = input_min
        self._hour_layers: Dict[int, _HourLayer] = {}

    # -- hour layer ---------------------------------------------------------
    def hour_layer(self, hour: int) -> _HourLayer:
        layer = self._hour_layers.get(hour)
        if layer is not None:
            return layer
        ev = self._ev
        carbon = ev.carbon_model
        intensity = {r: ev.intensity(r, hour) for r in self._all_regions}
        kv, client = self._kv, self._client
        layer = _HourLayer()
        n = len(self.order)
        for i in range(n):
            ext_region, ext_bytes = self._ext[i]
            per_region: Dict[str, float] = {}
            for r in self.domains[i]:
                if self.order[i] not in self.guaranteed:
                    per_region[r] = 0.0
                    continue
                g = self.energy_min[i][r] * intensity[r]
                if ext_region is not None:
                    g += carbon.transmission_carbon_g(
                        (intensity[ext_region] + intensity[r]) / 2.0,
                        ext_bytes,
                        ext_region == r,
                    )
                if i == self._start_index:
                    g += carbon.transmission_carbon_g(
                        (intensity[client] + intensity[r]) / 2.0,
                        self._input_min,
                        client == r,
                    )
                per_region[r] = g
            layer.exec_carbon.append(per_region)
        for key, bmin in self.edge_bytes_min.items():
            u, i = key
            table: Dict[Tuple[str, str], float] = {}
            for ru in self.domains[u]:
                for rv in self.domains[i]:
                    if self.edge_sync[key]:
                        g = carbon.transmission_carbon_g(
                            (intensity[ru] + intensity[kv]) / 2.0,
                            bmin,
                            ru == kv,
                        ) + carbon.transmission_carbon_g(
                            (intensity[kv] + intensity[rv]) / 2.0,
                            bmin,
                            kv == rv,
                        )
                    else:
                        g = carbon.transmission_carbon_g(
                            (intensity[ru] + intensity[rv]) / 2.0,
                            bmin,
                            ru == rv,
                        )
                    table[(ru, rv)] = g
            layer.edge_carbon[key] = table
            layer.edge_carbon_min[key] = {
                rv: min(table[(ru, rv)] for ru in self.domains[u])
                for rv in self.domains[i]
            }
        node_carbon_min: List[float] = []
        for i in range(n):
            if self.order[i] not in self.guaranteed:
                node_carbon_min.append(0.0)
                continue
            best = float("inf")
            for r in self.domains[i]:
                term = layer.exec_carbon[i][r]
                for e in self.guaranteed_in_edges[i]:
                    term += layer.edge_carbon_min[(self.index[e.src], i)][r]
                best = min(best, term)
            node_carbon_min.append(best)
        layer.suffix_carbon = [0.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            layer.suffix_carbon[i] = (
                layer.suffix_carbon[i + 1] + node_carbon_min[i]
            )
        self._hour_layers[hour] = layer
        return layer

    # -- incremental terms (B&B) --------------------------------------------
    def cost_term(self, i: int, region: str, assigned: Sequence[str]) -> float:
        """Exact min-support USD contribution of deciding node ``i``."""
        if self.order[i] not in self.guaranteed:
            return 0.0
        term = self.exec_cost_min[i][region]
        for e in self.guaranteed_in_edges[i]:
            u = self.index[e.src]
            term += self.edge_cost[(u, i)][(assigned[u], region)]
        return term

    def carbon_term(
        self, layer: _HourLayer, i: int, region: str, assigned: Sequence[str]
    ) -> float:
        """Exact min-support carbon contribution of deciding node ``i``."""
        if self.order[i] not in self.guaranteed:
            return 0.0
        term = layer.exec_carbon[i][region]
        for e in self.guaranteed_in_edges[i]:
            u = self.index[e.src]
            term += layer.edge_carbon[(u, i)][(assigned[u], region)]
        return term

    def finish_bound(
        self, i: int, region: str, assigned: Sequence[str], finishes: Sequence[float]
    ) -> float:
        """Earliest possible finish of guaranteed node ``i`` (0 otherwise):
        the simulator's critical-path recurrence over guaranteed edges
        with minimum durations and transfer latencies."""
        name = self.order[i]
        if name not in self.guaranteed:
            return 0.0
        if i == self._start_index:
            arrival = self.arrive_lat[i][region]
        else:
            arrival = 0.0
            for e in self.guaranteed_in_edges[i]:
                u = self.index[e.src]
                arrival = max(
                    arrival,
                    finishes[u] + self.edge_lat[(u, i)][(assigned[u], region)],
                )
        return arrival + self.dur_min[i][region]

    # -- whole-plan bounds ---------------------------------------------------
    def plan_lower_bounds(
        self, plan: DeploymentPlan, hour: int
    ) -> Tuple[float, float, float]:
        """``(carbon_g, cost_usd, latency_s)`` floors for a full plan.

        Every Monte-Carlo sample of the plan — hence every mean and
        every p95 tail — is at least these values, which is what lets
        the exhaustive solver discard provably tolerance-dead plans
        without simulating them.
        """
        layer = self.hour_layer(hour)
        assigned: List[str] = []
        finishes: List[float] = []
        carbon_g = 0.0
        cost_usd = 0.0
        latency_s = 0.0
        for i, name in enumerate(self.order):
            region = plan.region_of(name)
            carbon_g += self.carbon_term(layer, i, region, assigned)
            cost_usd += self.cost_term(i, region, assigned)
            finish = self.finish_bound(i, region, assigned, finishes)
            latency_s = max(latency_s, finish)
            assigned.append(region)
            finishes.append(finish)
        return carbon_g, cost_usd, latency_s


class ExactSolver:
    """Best-first branch-and-bound: provably optimal plan per hour.

    Shares the :class:`PlanEvaluator` (and its cache, stats and RNG
    substreams) with every other solver, so its metric values are
    bit-identical to what ``ExhaustiveSolver``/HBSS would compute for
    the same plan.  Raises :class:`SolverError` once ``max_expansions``
    states have been expanded without closing the search.
    """

    def __init__(
        self,
        evaluator: PlanEvaluator,
        max_expansions: int = DEFAULT_MAX_EXPANSIONS,
    ):
        self._ev = evaluator
        self._max_expansions = max_expansions
        self._bounds: Optional[LowerBoundTables] = None

    @property
    def bounds(self) -> LowerBoundTables:
        if self._bounds is None:
            self._bounds = LowerBoundTables(self._ev)
        return self._bounds

    def solve_hour(
        self, hour: int, enforce_tolerances: bool = True
    ) -> Tuple[DeploymentPlan, WorkflowEstimate]:
        with profiled_phase("solver.solve_hour"):
            return self._solve_hour(hour, enforce_tolerances)

    def _solve_hour(
        self, hour: int, enforce_tolerances: bool
    ) -> Tuple[DeploymentPlan, WorkflowEstimate]:
        start_time = time.perf_counter()
        ev = self._ev
        b = self.bounds
        layer = b.hour_layer(hour)
        n = len(b.order)
        priority = ev.config.priority

        tol = ev.config.tolerances
        check_tol = enforce_tolerances and tol is not None and not (
            tol.latency is None and tol.carbon is None and tol.cost is None
        )
        if check_tol:
            base = ev.baseline(hour)
            thr_latency = (
                base.tail_latency_s * (1.0 + tol.latency)
                if tol.latency is not None
                else float("inf")
            )
            thr_carbon = (
                base.tail_carbon_g * (1.0 + tol.carbon)
                if tol.carbon is not None
                else float("inf")
            )
            thr_cost = (
                base.tail_cost_usd * (1.0 + tol.cost)
                if tol.cost is not None
                else float("inf")
            )
        else:
            thr_latency = thr_carbon = thr_cost = float("inf")

        def objective(carbon_lb: float, cost_lb: float, lat_lb: float) -> float:
            if priority == "carbon":
                return carbon_lb
            if priority == "cost":
                return cost_lb
            return lat_lb

        # Seed the incumbent with the home plan: it anchors the §9.4
        # baseline (never violates its own augmented tails) and gives
        # the very first prune comparisons something to cut against.
        best_plan: Optional[DeploymentPlan] = None
        best_metric = float("inf")
        home = ev.home_plan()
        if ev.is_plan_compliant(home) and not (
            check_tol and ev.tolerance_violated(home, hour)
        ):
            best_plan, best_metric = home, ev.metric(home, hour)

        counter = itertools.count()
        root_bound = objective(layer.suffix_carbon[0], b.suffix_cost[0], 0.0)
        # state: (bound, tie, k, assigned, g_carbon, g_cost, finishes, lat_lb)
        heap = [(root_bound, next(counter), 0, (), 0.0, 0.0, (), 0.0)]
        expanded = pruned = 0
        while heap:
            bound, _, k, assigned, g_carbon, g_cost, finishes, lat_lb = (
                heapq.heappop(heap)
            )
            if bound * BOUND_SAFETY >= best_metric:
                # Best-first order: every remaining state's bound is at
                # least this one's — the incumbent is proven optimal.
                break
            if k == n:
                plan = DeploymentPlan(dict(zip(b.order, assigned)))
                if check_tol and ev.tolerance_violated(plan, hour):
                    continue
                metric = ev.metric(plan, hour)
                if metric < best_metric:
                    best_plan, best_metric = plan, metric
                continue
            expanded += 1
            if expanded > self._max_expansions:
                raise SolverError(
                    f"branch-and-bound expanded more than "
                    f"{self._max_expansions} states without closing the "
                    f"search; raise max_expansions or use HBSSSolver"
                )
            for region in b.domains[k]:
                child_carbon = g_carbon + b.carbon_term(
                    layer, k, region, assigned
                )
                child_cost = g_cost + b.cost_term(k, region, assigned)
                finish = b.finish_bound(k, region, assigned, finishes)
                child_lat = max(lat_lb, finish)
                carbon_lb = child_carbon + layer.suffix_carbon[k + 1]
                cost_lb = child_cost + b.suffix_cost[k + 1]
                child_bound = objective(carbon_lb, cost_lb, child_lat)
                if child_bound * BOUND_SAFETY >= best_metric:
                    pruned += 1
                    continue
                if check_tol and (
                    carbon_lb * BOUND_SAFETY > thr_carbon
                    or cost_lb * BOUND_SAFETY > thr_cost
                    or child_lat * BOUND_SAFETY > thr_latency
                ):
                    pruned += 1
                    continue
                heapq.heappush(
                    heap,
                    (
                        child_bound,
                        next(counter),
                        k + 1,
                        assigned + (region,),
                        child_carbon,
                        child_cost,
                        finishes + (finish,),
                        child_lat,
                    ),
                )

        if best_plan is None:
            # Every plan violates tolerances: fall back to home (§6.1).
            best_plan = home
            best_metric = ev.metric(home, hour)
        tightness = (
            100.0 * root_bound / best_metric if best_metric > 0 else 0.0
        )
        ev.stats.bump(
            bnb_nodes_expanded=expanded,
            bnb_nodes_pruned=pruned,
            bnb_hours_solved=1,
            bnb_bound_tightness_pct=min(100.0, max(0.0, tightness)),
            wall_time_s=time.perf_counter() - start_time,
        )
        return best_plan, ev.estimate(best_plan, hour)

    def solve_day(
        self,
        hours: Optional[Sequence[int]] = None,
        enforce_tolerances: bool = True,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> HourlyPlanSet:
        """Provably optimal per-hour plans over the day, optionally
        fanned over a worker pool (same contract as the other solvers:
        ``jobs=None`` defers to ``settings.parallel_hours``, ``backend``
        to ``settings.parallel_backend``; any worker count or backend
        returns the identical plan set — the search is deterministic
        and the shared evaluator order-independent)."""
        with profiled_phase("solver.solve_day"):
            hour_list = list(hours) if hours is not None else list(range(24))
            if not hour_list:
                raise ValueError("need at least one hour to solve for")
            if backend is None:
                backend = self._ev.settings.parallel_backend
            if backend not in ("thread", "process"):
                raise ValueError(
                    f"backend must be 'thread' or 'process', got {backend!r}"
                )
            n_jobs = resolve_jobs(
                jobs, self._ev.settings.parallel_hours, len(hour_list)
            )
            if n_jobs <= 1:
                plans = [
                    self.solve_hour(h, enforce_tolerances)[0]
                    for h in hour_list
                ]
            elif backend == "process":
                outputs = process_map(
                    self._hour_task,
                    [(h, enforce_tolerances) for h in hour_list],
                    n_jobs,
                )
                plans = []
                for plan, deltas in outputs:
                    if deltas:
                        self._ev.stats.bump(**deltas)
                    plans.append(plan)
            else:
                with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                    plans = list(
                        pool.map(
                            lambda h: self.solve_hour(h, enforce_tolerances)[0],
                            hour_list,
                        )
                    )
            return HourlyPlanSet(dict(zip(hour_list, plans)))

    def _hour_task(self, task: Tuple[int, bool]):
        """Process-pool work unit (forked child): winning plan plus a
        plain counter-delta dict (``SolverStats`` is not picklable)."""
        hour, enforce_tolerances = task
        before = self._ev.stats.snapshot()
        plan = self.solve_hour(hour, enforce_tolerances)[0]
        after = self._ev.stats.snapshot()
        deltas = {
            name: after[name] - before[name]
            for name in after
            if after[name] != before[name]
        }
        return plan, deltas
