"""Deployment-plan solvers (paper §5.1).

The search space for a workflow with nodes ``N`` over regions ``R`` is
``|R|^|N|``.  Caribou's production solver is Heuristic-Biased Stochastic
Sampling (:mod:`repro.core.solver.hbss`, Alg. 1); the paper also
discusses the coarse single-region approach (``O(|R|)``, globally
suboptimal) and notes that exhaustive/BFS search "proved intractable" —
both are provided as baselines for comparison and ablation:

* :class:`~repro.core.solver.hbss.HBSSSolver`
* :class:`~repro.core.solver.coarse.CoarseSolver`
* :class:`~repro.core.solver.exhaustive.ExhaustiveSolver`
* :class:`~repro.core.solver.exact.ExactSolver` — provably optimal
  branch-and-bound with admissible per-node lower bounds; tractable for
  mid-size spaces where exhaustive enumeration refuses
"""

from repro.core.solver.coarse import CoarseSolver
from repro.core.solver.evaluation import (
    EvaluationCache,
    PlanEvaluator,
    SharedEvaluationCache,
    SolverSettings,
    SolverStats,
)
from repro.core.solver.exact import ExactSolver, LowerBoundTables
from repro.core.solver.exhaustive import ExhaustiveSolver
from repro.core.solver.hbss import HBSSSolver, SolveResult, resolve_jobs

__all__ = [
    "EvaluationCache",
    "SharedEvaluationCache",
    "PlanEvaluator",
    "SolverSettings",
    "SolverStats",
    "HBSSSolver",
    "SolveResult",
    "CoarseSolver",
    "ExhaustiveSolver",
    "ExactSolver",
    "LowerBoundTables",
    "resolve_jobs",
]
