"""Coarse-grained single-region solver (paper §5.1's "simple approach").

"A simple approach to tame the search space is to limit the deployment
of all DAG nodes to the same region, reducing the solver complexity to
O(|R|)."  The paper shows this is globally suboptimal — it can neither
offload off-critical-path nodes nor respect per-function compliance
while shifting the rest (§5.1) — which is exactly what Fig. 7's
"Coarse" bars demonstrate.  This solver is that baseline.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

from repro.common.errors import SolverError
from repro.core.solver.evaluation import PlanEvaluator
from repro.metrics.montecarlo import WorkflowEstimate
from repro.model.plan import DeploymentPlan, HourlyPlanSet


class CoarseSolver:
    """Evaluates every compliant single-region plan, picks the best."""

    def __init__(self, evaluator: PlanEvaluator):
        self._ev = evaluator

    def candidate_regions(self) -> Tuple[str, ...]:
        """Regions in which *every* node may legally run."""
        ev = self._ev
        candidates = []
        for region in ev.regions:
            if all(
                region in ev.permitted_regions(node)
                for node in ev.dag.node_names
            ):
                candidates.append(region)
        return tuple(candidates)

    def solve_hour(
        self, hour: int, enforce_tolerances: bool = True
    ) -> Tuple[DeploymentPlan, WorkflowEstimate]:
        """Best single-region plan for one hour.

        Raises :class:`SolverError` when compliance leaves no region at
        all; falls back to the home region when every alternative
        violates the QoS tolerances.
        """
        start_time = time.perf_counter()
        ev = self._ev
        regions = self.candidate_regions()
        if not regions:
            raise SolverError(
                "no region satisfies all function-level compliance "
                "constraints simultaneously; a coarse single-region plan "
                "is impossible"
            )
        best_plan: Optional[DeploymentPlan] = None
        best_metric = float("inf")
        for region in regions:
            plan = DeploymentPlan.single_region(ev.dag, region)
            if enforce_tolerances and ev.tolerance_violated(plan, hour):
                continue
            metric = ev.metric(plan, hour)
            if metric < best_metric:
                best_plan, best_metric = plan, metric
        if best_plan is None:
            best_plan = ev.home_plan()
        ev.stats.wall_time_s += time.perf_counter() - start_time
        return best_plan, ev.estimate(best_plan, hour)

    def solve_day(
        self, hours: Optional[Sequence[int]] = None, enforce_tolerances: bool = True
    ) -> HourlyPlanSet:
        hour_list = list(hours) if hours is not None else list(range(24))
        plans = {
            h: self.solve_hour(h, enforce_tolerances)[0] for h in hour_list
        }
        return HourlyPlanSet(plans)
