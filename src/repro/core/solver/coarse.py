"""Coarse-grained single-region solver (paper §5.1's "simple approach").

"A simple approach to tame the search space is to limit the deployment
of all DAG nodes to the same region, reducing the solver complexity to
O(|R|)."  The paper shows this is globally suboptimal — it can neither
offload off-critical-path nodes nor respect per-function compliance
while shifting the rest (§5.1) — which is exactly what Fig. 7's
"Coarse" bars demonstrate.  This solver is that baseline.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence, Tuple

from repro.common.errors import SolverError
from repro.core.solver.evaluation import PlanEvaluator
from repro.core.solver.hbss import resolve_jobs
from repro.core.solver.parallel import process_map
from repro.metrics.montecarlo import WorkflowEstimate
from repro.model.plan import DeploymentPlan, HourlyPlanSet


class CoarseSolver:
    """Evaluates every compliant single-region plan, picks the best."""

    def __init__(self, evaluator: PlanEvaluator):
        self._ev = evaluator
        self._candidates: Optional[Tuple[str, ...]] = None

    def candidate_regions(self) -> Tuple[str, ...]:
        """Regions in which *every* node may legally run.

        Computed once per solver — compliance constraints are static,
        so the per-node scan must not be repeated for each of the 24
        hourly solves.
        """
        if self._candidates is None:
            ev = self._ev
            self._candidates = tuple(
                region
                for region in ev.regions
                if all(
                    region in ev.permitted_regions(node)
                    for node in ev.dag.node_names
                )
            )
        return self._candidates

    def solve_hour(
        self, hour: int, enforce_tolerances: bool = True
    ) -> Tuple[DeploymentPlan, WorkflowEstimate]:
        """Best single-region plan for one hour.

        Raises :class:`SolverError` when compliance leaves no region at
        all; falls back to the home region when every alternative
        violates the QoS tolerances.
        """
        plan = self._best_plan_for_hour(hour, enforce_tolerances)
        return plan, self._ev.estimate(plan, hour)

    def _best_plan_for_hour(
        self, hour: int, enforce_tolerances: bool
    ) -> DeploymentPlan:
        """The winning plan only — no estimate forced on the caller
        (``solve_day`` discards per-hour estimates, and the winner's
        mean metric was already computed while ranking)."""
        start_time = time.perf_counter()
        ev = self._ev
        regions = self.candidate_regions()
        if not regions:
            raise SolverError(
                "no region satisfies all function-level compliance "
                "constraints simultaneously; a coarse single-region plan "
                "is impossible"
            )
        plans = [
            DeploymentPlan.single_region(ev.dag, region) for region in regions
        ]
        if len(plans) > 1:
            # Build all uncached single-region profiles in one stacked
            # kernel call (values identical to lazy per-plan builds;
            # no-op when batched evaluation is disabled).
            ev.prefetch_profiles(plans)
        best_plan: Optional[DeploymentPlan] = None
        best_metric = float("inf")
        for plan in plans:
            if enforce_tolerances and ev.tolerance_violated(plan, hour):
                continue
            metric = ev.metric(plan, hour)
            if metric < best_metric:
                best_plan, best_metric = plan, metric
        if best_plan is None:
            best_plan = ev.home_plan()
        ev.stats.bump(wall_time_s=time.perf_counter() - start_time)
        return best_plan

    def solve_day(
        self,
        hours: Optional[Sequence[int]] = None,
        enforce_tolerances: bool = True,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> HourlyPlanSet:
        """Per-hour winners over the day, optionally fanned over a
        worker pool (``jobs``; ``None`` defers to
        ``settings.parallel_hours``; ``backend`` picks thread vs
        fork-based process workers, defaulting to
        ``settings.parallel_backend``).  Deterministic regardless of
        worker count or backend: the evaluator's per-plan RNG substreams
        make every estimate order-independent."""
        hour_list = list(hours) if hours is not None else list(range(24))
        if not hour_list:
            raise ValueError("need at least one hour to solve for")
        if backend is None:
            backend = self._ev.settings.parallel_backend
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        n_jobs = resolve_jobs(
            jobs, self._ev.settings.parallel_hours, len(hour_list)
        )
        if n_jobs <= 1:
            plans = [
                self._best_plan_for_hour(h, enforce_tolerances)
                for h in hour_list
            ]
        elif backend == "process":
            outputs = process_map(
                self._hour_task,
                [(h, enforce_tolerances) for h in hour_list],
                n_jobs,
            )
            plans = []
            for plan, deltas in outputs:
                if deltas:
                    self._ev.stats.bump(**deltas)
                plans.append(plan)
        else:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                plans = list(
                    pool.map(
                        lambda h: self._best_plan_for_hour(
                            h, enforce_tolerances
                        ),
                        hour_list,
                    )
                )
        return HourlyPlanSet(dict(zip(hour_list, plans)))

    def _hour_task(self, task: Tuple[int, bool]):
        """Process-pool work unit: solve one hour in a forked child and
        ship back the winning plan plus a counter-delta dict (the stats
        object itself holds a lock and is not picklable)."""
        hour, enforce_tolerances = task
        before = self._ev.stats.snapshot()
        plan = self._best_plan_for_hour(hour, enforce_tolerances)
        after = self._ev.stats.snapshot()
        deltas = {
            name: after[name] - before[name]
            for name in after
            if after[name] != before[name]
        }
        return plan, deltas
