"""Temporal shifting extension (paper §2.2, future-work direction).

The paper contrasts *geospatial* shifting (its contribution) with
*temporal* shifting — "delaying the execution of latency-tolerant
workloads to periods with lower carbon intensity" — and positions the
two as orthogonal levers.  Caribou's conclusion calls for "expanding the
benefits to broader workloads"; this module provides that combination
for delay-tolerant invocations:

Given a developer-declared deadline tolerance, the
:class:`TemporalShifter` holds an invocation and releases it at the
lowest-carbon *feasible* time slot, where the carbon of a slot is
evaluated under the deployment plan that will be in force then — i.e.
the decision is jointly temporal and geospatial: waiting two hours may
be worthwhile precisely because the 14:00 plan runs the heavy stages in
the solar region.

This is deliberately conservative infrastructure: invocations without a
declared tolerance pass straight through, and the shifter never delays
past the deadline even if every slot looks bad.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.clock import SECONDS_PER_HOUR
from repro.core.api import Payload
from repro.core.executor import CaribouExecutor


@dataclass(frozen=True)
class TemporalPolicy:
    """Delay tolerance for a class of invocations.

    Attributes:
        max_delay_s: Hard deadline: the invocation starts no later than
            submission time + this.
        slot_s: Granularity of candidate start times.  Hourly slots
            match the hourly carbon data and plan granularity.
    """

    max_delay_s: float
    slot_s: float = SECONDS_PER_HOUR

    def __post_init__(self) -> None:
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if self.slot_s <= 0:
            raise ValueError("slot_s must be positive")


@dataclass
class ShiftDecision:
    """Why an invocation was scheduled when it was (observability)."""

    submitted_at_s: float
    scheduled_at_s: float
    slot_intensities: Dict[float, float]

    @property
    def delay_s(self) -> float:
        return self.scheduled_at_s - self.submitted_at_s

    @property
    def immediate_intensity(self) -> float:
        return self.slot_intensities[min(self.slot_intensities)]

    @property
    def chosen_intensity(self) -> float:
        return self.slot_intensities[self.scheduled_at_s]


class TemporalShifter:
    """Queues delay-tolerant invocations to low-carbon slots."""

    def __init__(
        self,
        executor: CaribouExecutor,
        intensity_fn: Optional[Callable[[str, int], float]] = None,
    ):
        """Args:
        executor: The workflow's Caribou executor (provides the cloud,
            the active plan lookup, and the invocation entry point).
        intensity_fn: ``(region, absolute hour) -> gCO2eq/kWh``.
            Defaults to the actual carbon source; pass the Metrics
            Manager's forecast accessor for forecast-driven shifting.
        """
        self._executor = executor
        self._cloud = executor._d.cloud
        self._dag = executor._d.dag
        if intensity_fn is None:
            source = self._cloud.carbon_source
            intensity_fn = lambda region, hour: source.intensity_at_hour(
                region, hour
            )
        self._intensity_fn = intensity_fn
        self.decisions: List[ShiftDecision] = []

    # -- slot evaluation -------------------------------------------------------
    def slot_intensity(self, start_s: float) -> float:
        """Workflow-weighted grid intensity of starting at ``start_s``.

        Uses the plan in force at that hour: each node contributes its
        region's intensity, so a slot whose plan offloads heavy stages
        to a clean region scores well even if the home grid is dirty.
        """
        hour = int(start_s // SECONDS_PER_HOUR)
        plan_set_raw, _ = self._executor._d.kv().get(
            self._executor._d.meta_table, "active_plan",
            caller_region=self._executor._d.config.home_region,
            workflow=self._executor._d.name,
        )
        if plan_set_raw is None:
            regions = [self._executor._d.config.home_region] * len(self._dag)
        else:
            from repro.model.plan import HourlyPlanSet

            plan_set = HourlyPlanSet.from_dict(plan_set_raw)
            if plan_set.is_expired(start_s):
                regions = [self._executor._d.config.home_region] * len(self._dag)
            else:
                plan = plan_set.plan_for_hour(hour % 24)
                regions = [plan.region_of(n) for n in self._dag.node_names]
        intensities = [self._intensity_fn(r, hour) for r in regions]
        return sum(intensities) / len(intensities)

    def choose_start(self, policy: TemporalPolicy) -> Tuple[float, Dict[float, float]]:
        """Pick the lowest-intensity feasible start time.

        Candidates are "now" plus each slot boundary up to the deadline.
        Ties break towards the earliest slot (less queueing risk).
        """
        now = self._cloud.now()
        deadline = now + policy.max_delay_s
        candidates = [now]
        next_slot = (int(now // policy.slot_s) + 1) * policy.slot_s
        while next_slot <= deadline:
            candidates.append(next_slot)
            next_slot += policy.slot_s
        intensities = {t: self.slot_intensity(t) for t in candidates}
        best = min(candidates, key=lambda t: (intensities[t], t))
        return best, intensities

    # -- submission ----------------------------------------------------------------
    def submit(
        self,
        payload: Payload,
        policy: Optional[TemporalPolicy] = None,
    ) -> ShiftDecision:
        """Submit an invocation, possibly deferring it.

        Returns the :class:`ShiftDecision`; the actual request id is
        produced when the deferred invocation fires (invocations are
        fire-and-forget through the executor, matching §6.2 semantics).
        """
        now = self._cloud.now()
        if policy is None or policy.max_delay_s == 0:
            self._executor.invoke(payload)
            decision = ShiftDecision(
                submitted_at_s=now, scheduled_at_s=now,
                slot_intensities={now: self.slot_intensity(now)},
            )
            self.decisions.append(decision)
            return decision

        start, intensities = self.choose_start(policy)
        if start <= now:
            self._executor.invoke(payload)
        else:
            self._cloud.env.schedule_at(
                start, lambda: self._executor.invoke(payload)
            )
        decision = ShiftDecision(
            submitted_at_s=now, scheduled_at_s=start,
            slot_intensities=intensities,
        )
        self.decisions.append(decision)
        return decision

    # -- reporting -----------------------------------------------------------------
    def mean_intensity_improvement(self) -> float:
        """Average relative intensity reduction achieved by waiting."""
        gains = []
        for d in self.decisions:
            immediate = d.slot_intensities[min(d.slot_intensities)]
            if immediate > 0:
                gains.append(1.0 - d.chosen_intensity / immediate)
        return sum(gains) / len(gains) if gains else 0.0
