"""Static code analysis: source code -> workflow DAG (paper §6.1 step 1).

"The structure of a workflow is implicitly defined by a developer using
our API and a workflow is then extracted from the source code through
static code analysis at initial deployment" (§4).  The analyser parses
each registered handler's source with :mod:`ast` and recovers:

* DAG edges — every ``invoke_serverless_function(data, target, [cond])``
  call site, with the edge marked *conditional* when the third argument
  is present and not literally ``True``;
* fan-out — a call site inside a loop expands the target function into
  its declared ``max_instances`` stages (each execution stage is a
  separate DAG node, §4);
* synchronisation nodes — handlers calling ``get_predecessor_data``.

The resulting :class:`~repro.model.dag.WorkflowDAG` is validated against
the §4 structural rules (single start node, acyclic, sync nodes declare
fan-in intent).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import WorkflowDefinitionError
from repro.core.api import FunctionSpec, Workflow
from repro.model.dag import Edge, Node, WorkflowDAG


@dataclass(frozen=True)
class CallSite:
    """One discovered ``invoke_serverless_function`` call."""

    target: str
    conditional: bool
    in_loop: bool


@dataclass(frozen=True)
class FunctionAnalysis:
    """Static facts about one handler."""

    name: str
    call_sites: Tuple[CallSite, ...]
    uses_predecessor_data: bool


class _HandlerVisitor(ast.NodeVisitor):
    """Walks a handler body collecting API call sites."""

    def __init__(self, known_functions: Dict[str, str]):
        # maps both spec names and handler __name__s to spec names
        self._known = known_functions
        self.call_sites: List[CallSite] = []
        self.uses_predecessor_data = False
        self._loop_depth = 0

    # loops ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:  # pragma: no cover
        self.visit_For(node)  # type: ignore[arg-type]

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # calls ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = self._called_name(node)
        if name == "invoke_serverless_function":
            self._handle_invoke(node)
        elif name == "get_predecessor_data":
            self.uses_predecessor_data = True
        self.generic_visit(node)

    @staticmethod
    def _called_name(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    def _handle_invoke(self, node: ast.Call) -> None:
        target = self._resolve_target(node)
        conditional = self._is_conditional(node)
        self.call_sites.append(
            CallSite(
                target=target,
                conditional=conditional,
                in_loop=self._loop_depth > 0,
            )
        )

    def _resolve_target(self, node: ast.Call) -> str:
        target_expr: Optional[ast.expr] = None
        if len(node.args) >= 2:
            target_expr = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "next_function":
                    target_expr = kw.value
        if target_expr is None:
            raise WorkflowDefinitionError(
                "invoke_serverless_function call without a target function"
            )
        if isinstance(target_expr, ast.Constant) and isinstance(
            target_expr.value, str
        ):
            candidate = target_expr.value
        elif isinstance(target_expr, ast.Name):
            candidate = target_expr.id
        elif isinstance(target_expr, ast.Attribute):
            candidate = target_expr.attr
        else:
            raise WorkflowDefinitionError(
                "invoke_serverless_function target must be a name or string "
                f"literal, got {ast.dump(target_expr)}"
            )
        if candidate not in self._known:
            raise WorkflowDefinitionError(
                f"invoke_serverless_function targets unknown function "
                f"{candidate!r}"
            )
        return self._known[candidate]

    @staticmethod
    def _is_conditional(node: ast.Call) -> bool:
        cond_expr: Optional[ast.expr] = None
        if len(node.args) >= 3:
            cond_expr = node.args[2]
        else:
            for kw in node.keywords:
                if kw.arg == "conditional":
                    cond_expr = kw.value
        if cond_expr is None:
            return False  # edge always taken
        if isinstance(cond_expr, ast.Constant) and cond_expr.value is True:
            return False  # literally always true
        return True  # dynamically evaluated at runtime


def analyze_function(spec: FunctionSpec, known: Dict[str, str]) -> FunctionAnalysis:
    """Run static analysis over one handler's source."""
    try:
        source = textwrap.dedent(inspect.getsource(spec.handler))
    except (OSError, TypeError) as exc:
        raise WorkflowDefinitionError(
            f"cannot retrieve source of handler {spec.name!r} for static "
            f"analysis: {exc}"
        ) from exc
    tree = ast.parse(source)
    visitor = _HandlerVisitor(known)
    visitor.visit(tree)
    return FunctionAnalysis(
        name=spec.name,
        call_sites=tuple(visitor.call_sites),
        uses_predecessor_data=visitor.uses_predecessor_data,
    )


def stage_names(spec: FunctionSpec) -> Tuple[str, ...]:
    """DAG node names for one function: one per declared instance."""
    if spec.max_instances == 1:
        return (spec.name,)
    return tuple(f"{spec.name}:{i}" for i in range(spec.max_instances))


def analyze_workflow(workflow: Workflow) -> WorkflowDAG:
    """Extract and validate the full workflow DAG.

    Raises :class:`WorkflowDefinitionError` on structural violations:
    no/multiple entry points, cycles, fan-in without
    ``get_predecessor_data``, or fan-out into a multi-instance entry
    point.
    """
    specs = workflow.functions
    if not specs:
        raise WorkflowDefinitionError(
            f"workflow {workflow.name!r} has no registered functions"
        )
    known: Dict[str, str] = {}
    for spec in specs:
        known[spec.name] = spec.name
        known[spec.handler.__name__] = spec.name

    analyses = {spec.name: analyze_function(spec, known) for spec in specs}
    entry = workflow.entry_function
    if entry.max_instances != 1:
        raise WorkflowDefinitionError(
            f"entry point {entry.name!r} cannot declare max_instances > 1"
        )

    dag = WorkflowDAG(workflow.name)
    for spec in specs:
        for stage in stage_names(spec):
            dag.add_node(
                Node(name=stage, function=spec.name, memory_mb=spec.memory_mb)
            )

    for spec in specs:
        analysis = analyses[spec.name]
        src_stages = stage_names(spec)
        seen_targets: Dict[Tuple[str, bool], None] = {}
        for site in analysis.call_sites:
            target_spec = workflow.function(site.target)
            if not site.in_loop and target_spec.max_instances > 1:
                # A single (non-loop) call still targets stage 0 only;
                # further stages are reached by additional call sites or
                # loop iterations at runtime.
                dst_stages: Sequence[str] = stage_names(target_spec)
            else:
                dst_stages = stage_names(target_spec)
            key = (site.target, site.conditional)
            if key in seen_targets:
                continue  # several call sites to the same target == one edge set
            seen_targets[key] = None
            for src in src_stages:
                for dst in dst_stages:
                    if not dag.has_edge(src, dst):
                        dag.add_edge(
                            Edge(src=src, dst=dst, conditional=site.conditional)
                        )

    dag.validate()

    # Sync nodes must have declared fan-in intent (§8).
    for node_name in dag.sync_nodes:
        function = dag.node(node_name).function
        if not analyses[function].uses_predecessor_data:
            raise WorkflowDefinitionError(
                f"node {node_name!r} has multiple incoming edges but its "
                f"handler never calls get_predecessor_data()"
            )

    if dag.start_node != stage_names(entry)[0]:
        raise WorkflowDefinitionError(
            f"workflow start node {dag.start_node!r} does not match the "
            f"declared entry point {entry.name!r}"
        )
    return dag
