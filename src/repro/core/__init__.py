"""Caribou core: policy and enforcement (paper §3, §5, §6, §8).

* :mod:`repro.core.api` — the developer-facing Python API (Listing 1).
* :mod:`repro.core.analysis` — static code analysis extracting the DAG.
* :mod:`repro.core.solver` — deployment-plan solvers (HBSS + baselines).
* :mod:`repro.core.trigger` — token-bucket solve triggering (§5.2).
* :mod:`repro.core.deployer` — initial deployment utility (§6.1).
* :mod:`repro.core.migrator` — cross-region re-deployment (§6.1).
* :mod:`repro.core.executor` — cross-regional execution runtime (§6.2).
* :mod:`repro.core.manager` — the Deployment Manager loop (Fig. 6).
* :mod:`repro.core.baselines` — Step Functions / plain-SNS orchestrators.
"""

from repro.core.api import Payload, Workflow
from repro.core.analysis import analyze_workflow

__all__ = ["Workflow", "Payload", "analyze_workflow"]
