"""Cross-regional workflow execution and traffic routing (paper §6.2).

All cross-regional complexity is hidden in the function *wrapper*: user
handlers run unchanged while the wrapper

* fetches the active deployment plan (DP) and routes each successor
  invocation to the region the plan assigns, by publishing to that
  function's pub/sub topic there — piggybacking the DP on the message so
  every node can locate itself and its successors in the DAG;
* implements the synchronisation-node protocol (§4): predecessors store
  intermediate data in the distributed KV store and atomically update
  the edge annotation; whoever completes the invocation condition
  (Eq. 4.1) last invokes the sync node, which then loads the fan-in
  data from the store;
* implements conditional-DAG semantics: an edge whose condition
  evaluates false is marked ``C(e)=0`` and the skip is propagated so
  downstream sync nodes are never deadlocked waiting for data that will
  never arrive;
* routes 10 % of invocations to execute fully at the home region for
  benchmarking and metric collection (§6.2).

Implementation note on skip propagation: the paper's path-based rule
(§4) can over-cancel edges whose source is also reachable via a live
path.  We implement the exact fixed point instead: a node is *dead* iff
every incoming edge is annotated 0 or originates from a dead node; dead
nodes' outgoing annotations are set to 0 transitively.  To support this,
every edge lying upstream of a synchronisation node is annotation-class
(recorded 1 when taken), bounding the extra KV writes to the sync-
relevant subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.cloud.faults import ReliabilityStats
from repro.cloud.provider import SimulatedCloud
from repro.cloud.pubsub import Message
from repro.cloud.simulator import EventHandle
from repro.common.errors import CaribouError, WorkflowDefinitionError
from repro.core.api import (
    ExecutionContext,
    FunctionSpec,
    InvocationIntent,
    Payload,
    Workflow,
)
from repro.model.config import WorkflowConfig
from repro.model.dag import WorkflowDAG
from repro.model.plan import DeploymentPlan, HourlyPlanSet
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER

#: Message envelope overhead (request id, node pointer, flags), bytes.
HEADER_BYTES = 512.0
#: Piggybacked DP size per DAG node, bytes (§6.2 "copies the DP ...
#: piggybacking it on the invocation's intermediate data").
PLAN_ENTRY_BYTES = 48.0

META_PLAN_KEY = "active_plan"


def topic_name(workflow: str, function: str) -> str:
    return f"{workflow}.{function}"


def message_size(payload_bytes: float, n_nodes: int) -> float:
    return payload_bytes + HEADER_BYTES + PLAN_ENTRY_BYTES * n_nodes


def annotation_class_edges(dag: WorkflowDAG) -> FrozenSet[Tuple[str, str]]:
    """Edges lying upstream of any synchronisation node.

    Only these edges need runtime annotations: their resolution state
    (taken / skipped) feeds sync-node invocation conditions (Eq. 4.1)
    and deadness propagation; all other edges can never deadlock a
    fan-in.
    """
    sync = set(dag.sync_nodes)
    return frozenset(
        (e.src, e.dst)
        for e in dag.edges
        if e.dst in sync or (dag.descendants(e.dst) & sync)
    )


def propagate_dead(
    dag: WorkflowDAG,
    annotated_edges: FrozenSet[Tuple[str, str]],
    ann: Dict,
    topo_order: List[str],
) -> None:
    """Fixed-point deadness over the annotation-class subgraph.

    A node is dead iff all its annotation-class in-edges are annotated 0
    or originate from dead nodes; dead nodes' annotation-class out-edges
    are annotated 0 in turn (in-place on ``ann``).  This is the exact
    semantics behind the paper's §4 skip-propagation rule.
    """
    dead: set = set()
    start = dag.start_node
    for n in topo_order:
        if n == start:
            continue
        in_edges = [e for e in dag.in_edges(n) if (e.src, e.dst) in annotated_edges]
        if not in_edges:
            continue  # fed by non-annotated edges: cannot judge, assume live
        if all(
            ann.get(f"{e.src}->{e.dst}") == 0 or e.src in dead for e in in_edges
        ):
            dead.add(n)
    for n in dead:
        for e in dag.out_edges(n):
            if (e.src, e.dst) in annotated_edges:
                ann.setdefault(f"{e.src}->{e.dst}", 0)


def sync_condition_met(dag: WorkflowDAG, ann: Dict, sync_node: str) -> bool:
    """Eq. 4.1: all in-edges annotated, at least one taken."""
    values = [ann.get(f"{e.src}->{e.dst}") for e in dag.in_edges(sync_node)]
    return all(v is not None for v in values) and any(v == 1 for v in values)


@dataclass
class DeployedWorkflow:
    """Everything the runtime needs about one deployed workflow.

    Produced by the Deployment Utility (§6.1); consumed by the executor,
    the migrator, and the Deployment Manager.
    """

    workflow: Workflow
    dag: WorkflowDAG
    config: WorkflowConfig
    cloud: SimulatedCloud
    kv_region: str

    @property
    def name(self) -> str:
        return self.workflow.name

    @property
    def meta_table(self) -> str:
        return f"meta:{self.name}"

    @property
    def annotation_table(self) -> str:
        return f"annot:{self.name}"

    @property
    def data_table(self) -> str:
        return f"syncdata:{self.name}"

    def kv(self):
        return self.cloud.kvstore(self.kv_region)


class CaribouExecutor:
    """Runtime wrapper + invocation client for one deployed workflow."""

    def __init__(self, deployed: DeployedWorkflow):
        self._d = deployed
        self._dag = deployed.dag
        self._wf = deployed.workflow
        self._cloud = deployed.cloud
        self._rng = deployed.cloud.env.rng.get(f"executor:{deployed.name}")
        self._request_counter = 0
        # Edges upstream of any sync node are annotation-class (see
        # module docstring).
        self._annotated_edges: FrozenSet[Tuple[str, str]] = annotation_class_edges(
            self._dag
        )
        self._topo = self._dag.topological_order()
        # node -> FunctionSpec
        self._spec_of_node: Dict[str, FunctionSpec] = {
            n.name: self._wf.function(n.function) for n in self._dag.nodes
        }
        # Precompiled deadness-propagation plan: the same semantics as
        # module-level :func:`propagate_dead` + Eq. 4.1 checks, but with
        # the per-node annotation-class edge lists and string keys built
        # once here instead of per annotation (``_annotate`` runs on
        # every skip/invoke message, so the walks dominate at open-loop
        # request rates).
        start = self._dag.start_node
        self._dead_plan: List[Tuple[str, Tuple[Tuple[str, str], ...]]] = []
        for n in self._topo:
            if n == start:
                continue
            ins = tuple(
                (e.src, f"{e.src}->{e.dst}")
                for e in self._dag.in_edges(n)
                if (e.src, e.dst) in self._annotated_edges
            )
            if ins:
                self._dead_plan.append((n, ins))
        self._dead_out: Dict[str, Tuple[str, ...]] = {
            n: tuple(
                f"{e.src}->{e.dst}"
                for e in self._dag.out_edges(n)
                if (e.src, e.dst) in self._annotated_edges
            )
            for n, _ins in self._dead_plan
        }
        self._sync_nodes: Tuple[str, ...] = self._dag.sync_nodes
        self._sync_in_keys: Dict[str, Tuple[str, ...]] = {
            s: tuple(f"{e.src}->{e.dst}" for e in self._dag.in_edges(s))
            for s in self._sync_nodes
        }
        self._sync_flags: Dict[str, str] = {
            s: f"__invoked__:{s}" for s in self._sync_nodes
        }
        # -- observability --------------------------------------------------
        self._tracer = getattr(deployed.cloud, "tracer", NULL_TRACER)
        self._metrics = getattr(deployed.cloud, "metrics", NULL_METRICS)
        # -- reliability bookkeeping ---------------------------------------
        self._faults = getattr(deployed.cloud, "faults", None)
        # request id -> "pending" | "completed" | "failed" | "timed_out"
        self._requests: Dict[str, str] = {}
        # Ordered edge-annotation arrivals per request: (edge, value, t).
        # Pure bookkeeping for trace analysis, so only kept while a real
        # tracer is attached — untraced runs allocate nothing here.
        self._join_arrivals: Dict[str, List[Tuple[str, int, float]]] = {}
        self._watchdogs: Dict[str, EventHandle] = {}
        # Virtual-time admission stamp per in-flight request, feeding the
        # end-to-end latency histogram (cached: one instrument, hot path).
        self._request_t0: Dict[str, float] = {}
        self._latency_hist = self._metrics.histogram(
            "executor.request_latency_s", workflow=self._d.name
        )
        self._completed = 0
        self._failed = 0
        self._timed_out = 0
        self._home_fallbacks = 0
        deployed.cloud.pubsub.add_dead_letter_listener(self._on_dead_letter)

    @property
    def deployed(self) -> DeployedWorkflow:
        """The deployment this executor serves."""
        return self._d

    # ------------------------------------------------------------------ client
    def invoke(
        self,
        payload: Payload,
        plan: Optional[DeploymentPlan] = None,
        force_home: bool = False,
        request_id: Optional[str] = None,
    ) -> str:
        """End-user invocation entry point (Fig. 5 right, blue arrows).

        Fetches the current DP from the distributed KV store unless one
        is given, samples the 10 % home-region benchmarking decision
        (§6.2), and publishes the start message.  Returns the request id;
        advance the simulation to let the workflow run.
        """
        self._request_counter += 1
        rid = request_id or f"{self._d.name}-r{self._request_counter:06d}"
        self._begin_request(rid)

        # Draw the benchmarking coin unconditionally: short-circuiting it
        # behind ``force_home`` would desynchronise the executor's RNG
        # stream between runs that warm up (force_home=True) and runs
        # that do not, breaking seed reproducibility.
        draw = self._rng.random()
        benchmark = force_home or draw < self._d.config.benchmarking_fraction
        if benchmark:
            active = self.home_plan()
        elif plan is not None:
            active = plan
        else:
            active = self.fetch_active_plan()

        start = self._dag.start_node
        body = {
            "node": start,
            "request_id": rid,
            "plan": dict(active.assignments),
            "payloads": [self._encode_payload(payload)],
            "benchmark": benchmark,
        }
        self._publish_to_node(
            node=start,
            body=body,
            payload_bytes=payload.size_bytes,
            source_region=self._d.config.home_region,
            request_id=rid,
            edge_label=f"$input->{start}",
        )
        return rid

    def invoke_direct(self, payload: Payload, request_id: Optional[str] = None) -> str:
        """§6.2's other entry path: "sending requests directly to the
        entry function in the home region, which is then automatically
        re-routed if required".

        The message carries no plan; the home-region wrapper fetches the
        DP on delivery and forwards the request to the planned region
        when the start node lives elsewhere — one extra hop versus the
        proxy path of :meth:`invoke`, which is the price of not running
        the CLI proxy.
        """
        self._request_counter += 1
        rid = request_id or f"{self._d.name}-r{self._request_counter:06d}"
        self._begin_request(rid)
        start = self._dag.start_node
        home = self._d.config.home_region
        body = {
            "node": start,
            "request_id": rid,
            "plan": None,  # resolved by the home-region wrapper
            "payloads": [self._encode_payload(payload)],
            "benchmark": False,
        }
        message = Message(
            body=body,
            size_bytes=self._message_bytes(payload.size_bytes),
            workflow=self._d.name,
            request_id=rid,
        )
        topic = self._topic_for(self._spec_of_node[start].name)
        try:
            self._cloud.pubsub.publish(
                topic,
                home,
                message,
                source_region=home,
                edge_label=f"$input->{start}",
            )
        except CaribouError as exc:
            # Home region refused the publish (outage): the request is
            # explicitly failed, not silently lost.
            self._cloud.pubsub.dead_letter(topic, message, repr(exc))
        return rid

    def home_plan(self) -> DeploymentPlan:
        return DeploymentPlan.single_region(self._dag, self._d.config.home_region)

    def fetch_active_plan(self) -> DeploymentPlan:
        """Read the staged plan set from the KV store; fall back to the
        home region when none exists, it has expired (§5.2), or the
        store itself is unreachable (outage / injected KV error)."""
        try:
            raw, _lat = self._d.kv().get(
                self._d.meta_table,
                META_PLAN_KEY,
                caller_region=self._d.config.home_region,
                workflow=self._d.name,
            )
        except CaribouError:
            self._home_fallbacks += 1
            self._metrics.counter(
                "executor.home_fallbacks", workflow=self._d.name
            ).inc()
            return self.home_plan()
        now = self._cloud.now()
        if raw is None:
            return self.home_plan()
        plan_set = HourlyPlanSet.from_dict(raw)
        if plan_set.is_expired(now):
            return self.home_plan()
        hour_of_day = int(now // 3600.0) % 24
        plan = plan_set.plan_for_hour(hour_of_day)
        if not plan.covers(self._dag):
            return self.home_plan()
        return plan

    def stage_plan_set(self, plan_set: HourlyPlanSet) -> None:
        """Write a plan set as the active one (done by the migrator once
        all function re-deployments succeeded, §6.1)."""
        self._d.kv().put(
            self._d.meta_table,
            META_PLAN_KEY,
            plan_set.to_dict(),
            caller_region=self._d.config.home_region,
            workflow=self._d.name,
        )

    def clear_plan(self) -> None:
        self._d.kv().delete(
            self._d.meta_table,
            META_PLAN_KEY,
            caller_region=self._d.config.home_region,
            workflow=self._d.name,
        )

    # ------------------------------------------------------- wrapper plumbing
    def make_subscriber(
        self, function: str, region: str
    ) -> Callable[[Message], None]:
        """The pub/sub subscriber for (function, region): unpacks the
        message and dispatches to the wrapped execution."""

        def subscriber(message: Message) -> None:
            body = dict(message.body)
            node = body["node"]
            if body.get("plan") is None:
                # Direct-to-home request (§6.2): resolve the DP here and
                # re-route to the planned region when it is not us.
                plan = self.fetch_active_plan()
                body["plan"] = dict(plan.assignments)
                target = plan.region_of(node)
                if target != region:
                    payload_bytes = sum(
                        p["size_bytes"] for p in body["payloads"]
                    )
                    self._publish_to_node(
                        node=node,
                        body=body,
                        payload_bytes=payload_bytes,
                        source_region=region,
                        request_id=body["request_id"],
                        edge_label=f"$reroute->{node}",
                    )
                    return
            if self._dag.is_sync_node(node):
                self._start_sync_node(node, region, body)
            else:
                payloads = [self._decode_payload(p) for p in body["payloads"]]
                self._execute_node(node, region, payloads, body)

        return subscriber

    def _start_sync_node(self, node: str, region: str, body: Dict) -> None:
        """Sync nodes first load fan-in data from the KV store (Fig. 5)."""
        rid = body["request_id"]
        stored, kv_latency = self._d.kv().get(
            self._d.data_table,
            f"{rid}:{node}",
            caller_region=region,
            workflow=self._d.name,
            request_id=rid,
        )
        payloads = [self._decode_payload(p) for p in (stored or [])]
        total = sum(p.size_bytes for p in payloads)
        transfer = self._cloud.network.transfer(
            self._d.kv_region,
            region,
            total,
            workflow=self._d.name,
            request_id=rid,
            kind="data",
            edge=f"syncload:{node}",
        )
        delay = kv_latency + transfer.latency_s
        self._cloud.env.schedule(
            delay,
            self._guarded(rid, lambda: self._execute_node(node, region, payloads, body)),
        )

    def _execute_node(
        self, node: str, region: str, payloads: List[Payload], body: Dict
    ) -> None:
        spec = self._spec_of_node[node]
        rid = body["request_id"]
        input_bytes = sum(p.size_bytes for p in payloads)

        # Fixed external data reads follow the node (§9.1 rule 1).
        external_delay = 0.0
        if spec.external_data is not None:
            transfer = self._cloud.network.transfer(
                spec.external_data.region,
                region,
                spec.external_data.size_bytes,
                workflow=self._d.name,
                request_id=rid,
                kind="data",
                edge=f"external:{node}",
            )
            external_delay = transfer.latency_s

        def run() -> None:
            ctx = ExecutionContext(
                node=node, request_id=rid, predecessor_data=payloads
            )

            def wrapped(event: Any, faas_ctx) -> Any:
                self._wf.push_context(ctx)
                try:
                    spec.handler(event)
                finally:
                    self._wf.pop_context()
                self._process_intents(ctx, faas_ctx, body)
                total_out = sum(i.payload.size_bytes for i in ctx.intents)
                return Payload(content=None, size_bytes=total_out)

            event = payloads[0].content if payloads else None
            if self._dag.is_sync_node(node):
                event = None  # sync nodes read via get_predecessor_data()
            self._cloud.functions.invoke(
                workflow=self._d.name,
                function=spec.name,
                region=region,
                body=event,
                payload_bytes=input_bytes,
                node=node,
                request_id=rid,
                handler_override=wrapped,
            )

        if external_delay > 0:
            self._cloud.env.schedule(external_delay, self._guarded(rid, run))
        else:
            run()

    # --------------------------------------------------------- intent routing
    def _process_intents(self, ctx: ExecutionContext, faas_ctx, body: Dict) -> None:
        node = ctx.node
        plan = DeploymentPlan(body["plan"])
        rid = ctx.request_id
        region = faas_ctx.region
        end = faas_ctx.end_s

        covered: set = set()
        for intent in ctx.intents:
            dst = self._resolve_stage(intent)
            if not self._dag.has_edge(node, dst):
                raise WorkflowDefinitionError(
                    f"runtime invocation {node}->{dst} has no DAG edge; "
                    "static analysis and runtime behaviour diverge"
                )
            covered.add(dst)
            if not intent.conditional_value:
                self._schedule_skip(end, node, dst, region, rid, body)
            elif self._dag.is_sync_node(dst):
                self._schedule_sync_send(
                    end, node, dst, region, rid, intent.payload, body
                )
            else:
                self._schedule_direct_send(
                    end, node, dst, region, rid, intent.payload, body
                )

        # Out-edges never invoked this execution are implicit skips
        # (smaller fan-out than declared, or an untriggered branch).
        for edge in self._dag.out_edges(node):
            if edge.dst not in covered:
                self._schedule_skip(end, node, edge.dst, region, rid, body)

        # A terminal node executing is the request reaching its end: mark
        # it completed.  Done synchronously (its execution record is
        # already written) rather than via an event at ``end`` — an extra
        # event there would extend the run's idle point and shift the
        # virtual clock relative to fault-free pre-tracking behaviour.
        # Guarded on tracked requests so baseline subclasses with their
        # own entry points are unaffected.
        if not self._dag.out_edges(node) and rid in self._requests:
            self._complete_request(rid)

    def _resolve_stage(self, intent: InvocationIntent) -> str:
        spec = self._wf.function(intent.target_function)
        if spec.max_instances == 1:
            if intent.call_index > 0:
                raise WorkflowDefinitionError(
                    f"function {spec.name!r} invoked {intent.call_index + 1} "
                    "times in one execution but declares max_instances=1"
                )
            return spec.name
        if intent.call_index >= spec.max_instances:
            raise WorkflowDefinitionError(
                f"function {spec.name!r} fan-out exceeded its declared "
                f"max_instances={spec.max_instances}"
            )
        return f"{spec.name}:{intent.call_index}"

    # -- direct edges ---------------------------------------------------------
    def _schedule_direct_send(
        self,
        at_s: float,
        src: str,
        dst: str,
        src_region: str,
        rid: str,
        payload: Payload,
        body: Dict,
    ) -> None:
        def send() -> None:
            if (src, dst) in self._annotated_edges:
                self._annotate(rid, src_region, {f"{src}->{dst}": 1})
            new_body = {
                "node": dst,
                "request_id": rid,
                "plan": body["plan"],
                "payloads": [self._encode_payload(payload)],
                "benchmark": body.get("benchmark", False),
            }
            self._publish_to_node(
                node=dst,
                body=new_body,
                payload_bytes=payload.size_bytes,
                source_region=src_region,
                request_id=rid,
                edge_label=f"{src}->{dst}",
            )

        self._cloud.env.schedule_at(at_s, self._guarded(rid, send))

    # -- sync edges -------------------------------------------------------------
    def _schedule_sync_send(
        self,
        at_s: float,
        src: str,
        dst: str,
        src_region: str,
        rid: str,
        payload: Payload,
        body: Dict,
    ) -> None:
        def send() -> None:
            # Ship the intermediate data to the KV store region.
            transfer = self._cloud.network.transfer(
                src_region,
                self._d.kv_region,
                payload.size_bytes,
                workflow=self._d.name,
                request_id=rid,
                kind="data",
                edge=f"{src}->{dst}",
            )

            def store_and_check() -> None:
                kv = self._d.kv()
                encoded = self._encode_payload(payload)
                kv.update(
                    self._d.data_table,
                    f"{rid}:{dst}",
                    lambda cur: (cur or []) + [encoded],
                    caller_region=src_region,
                    workflow=self._d.name,
                    request_id=rid,
                )
                to_invoke = self._annotate(
                    rid, src_region, {f"{src}->{dst}": 1}
                )
                for sync_node in to_invoke:
                    self._invoke_sync_node(sync_node, src_region, rid, body)

            self._cloud.env.schedule(
                transfer.latency_s, self._guarded(rid, store_and_check)
            )

        self._cloud.env.schedule_at(at_s, self._guarded(rid, send))

    # -- skips ---------------------------------------------------------------------
    def _schedule_skip(
        self,
        at_s: float,
        src: str,
        dst: str,
        src_region: str,
        rid: str,
        body: Dict,
    ) -> None:
        if (src, dst) not in self._annotated_edges:
            return  # no sync node downstream: nothing can deadlock

        def skip() -> None:
            to_invoke = self._annotate(rid, src_region, {f"{src}->{dst}": 0})
            for sync_node in to_invoke:
                self._invoke_sync_node(sync_node, src_region, rid, body)

        self._cloud.env.schedule_at(at_s, self._guarded(rid, skip))

    # -- the atomic annotation + condition-check step ----------------------------
    def _annotate(
        self, rid: str, caller_region: str, marks: Dict[str, int]
    ) -> List[str]:
        """Atomically apply edge annotations, propagate deadness, and
        claim any sync nodes whose invocation condition (Eq. 4.1) just
        became true.  Returns the sync nodes this caller must invoke.
        """
        to_invoke: List[str] = []

        def mutate(current: Optional[Dict]) -> Dict:
            ann: Dict = dict(current or {})
            for key, value in marks.items():
                # Explicit marks always win over propagated ones.
                ann[key] = value
            # Inlined propagate_dead over the precompiled plan (see
            # __init__) — identical fixed-point semantics.
            get = ann.get
            dead: set = set()
            for n, ins in self._dead_plan:
                if all(get(k) == 0 or src in dead for src, k in ins):
                    dead.add(n)
            for n in dead:
                for k in self._dead_out[n]:
                    ann.setdefault(k, 0)
            for s in self._sync_nodes:
                flag = self._sync_flags[s]
                if get(flag):
                    continue
                values = [get(k) for k in self._sync_in_keys[s]]
                if all(v is not None for v in values) and any(v == 1 for v in values):
                    ann[flag] = True
                    to_invoke.append(s)
            return ann

        self._d.kv().update(
            self._d.annotation_table,
            rid,
            mutate,
            caller_region=caller_region,
            workflow=self._d.name,
            request_id=rid,
        )
        if self._tracer.enabled:
            self._record_join(rid, marks, to_invoke)
        return to_invoke

    def _record_join(
        self, rid: str, marks: Dict[str, int], to_invoke: List[str]
    ) -> None:
        """Trace-side record of the join protocol: remember annotation
        arrival order and emit one ``sync_gate`` span per sync node whose
        invocation condition this annotation completed.  The gate edge is
        the explicit mark of the completing call (deadness-propagated
        edges carry no timed arrival of their own); ``arrivals`` maps
        each directly-annotated in-edge to its annotation time."""
        now = self._cloud.now()
        arrivals = self._join_arrivals.setdefault(rid, [])
        for edge, value in marks.items():
            arrivals.append((edge, value, now))
        if not to_invoke:
            return
        gate = next(iter(marks))
        for sync_node in to_invoke:
            in_edges = {
                f"{e.src}->{e.dst}" for e in self._dag.in_edges(sync_node)
            }
            arrived = {e: t for e, _v, t in arrivals if e in in_edges}
            self._tracer.record(
                "sync_gate",
                sync_node,
                workflow=self._d.name,
                request_id=rid,
                sync_node=sync_node,
                gate=gate,
                arrivals=arrived,
            )

    def join_order(self, rid: str) -> Tuple[Tuple[str, int, float], ...]:
        """Edge annotations of one request in arrival order, as
        ``(edge, value, time)`` triples.  Populated only while a tracer
        is attached (the data exists for trace verification)."""
        return tuple(self._join_arrivals.get(rid, ()))

    def _invoke_sync_node(
        self, sync_node: str, src_region: str, rid: str, body: Dict
    ) -> None:
        """The last predecessor publishes the (data-free) invocation
        message; the sync node loads data from the KV store itself."""
        new_body = {
            "node": sync_node,
            "request_id": rid,
            "plan": body["plan"],
            "payloads": [],
            "benchmark": body.get("benchmark", False),
        }
        self._publish_to_node(
            node=sync_node,
            body=new_body,
            payload_bytes=0.0,
            source_region=src_region,
            request_id=rid,
            edge_label="",
        )

    # -- publication helper ------------------------------------------------------
    def _publish_to_node(
        self,
        node: str,
        body: Dict,
        payload_bytes: float,
        source_region: str,
        request_id: str,
        edge_label: str,
    ) -> None:
        plan = body["plan"]
        function = self._spec_of_node[node].name
        target_region = plan[node]
        topic = self._topic_for(function)
        home = self._d.config.home_region

        def unusable(region: str) -> bool:
            """Whether publishing to ``region`` cannot possibly succeed."""
            if not self._cloud.pubsub.topic_exists(topic, region):
                return True
            if self._faults is not None and self._faults.enabled:
                if self._faults.region_down(region):
                    self._faults.record("region_outage")
                    return True
                if self._faults.partitioned(source_region, region):
                    self._faults.record("network_partition")
                    return True
            return False

        # §6.1: if the planned deployment is not materialised (failed
        # migration) or its region is unreachable, fall back home.
        if target_region != home and unusable(target_region):
            self._home_fallbacks += 1
            self._metrics.counter(
                "executor.home_fallbacks", workflow=self._d.name
            ).inc()
            target_region = home
            body = dict(body)
            body["plan"] = dict(plan)
            body["plan"][node] = home
        message = Message(
            body=body,
            size_bytes=self._message_bytes(payload_bytes),
            workflow=self._d.name,
            request_id=request_id,
        )
        if unusable(target_region):
            # The home region itself is unusable.  Raising here would
            # escape a scheduled callback and crash the event loop, so
            # dead-letter the message instead — the listener marks the
            # request failed.
            self._cloud.pubsub.dead_letter(
                topic,
                message,
                f"no deliverable region for node {node!r} "
                f"(home {home!r} unusable)",
            )
            return
        try:
            self._cloud.pubsub.publish(
                topic,
                target_region,
                message,
                source_region=source_region,
                edge_label=edge_label,
            )
        except CaribouError as exc:
            self._cloud.pubsub.dead_letter(topic, message, repr(exc))

    # -- request lifecycle -------------------------------------------------------
    def _begin_request(self, rid: str) -> None:
        """Track a request end to end: every tracked request finishes as
        completed, failed, or timed out — never silently lost."""
        self._requests[rid] = "pending"
        self._request_t0[rid] = self._cloud.env.now()
        self._tracer.open_request(rid, self._d.name)
        self._metrics.counter("executor.requests", workflow=self._d.name).inc()
        timeout = self._d.config.request_timeout_s
        if timeout is not None:
            self._watchdogs[rid] = self._cloud.env.schedule(
                timeout, lambda: self._expire_request(rid)
            )

    def _finish_request(self, rid: str, status: str) -> bool:
        """First terminal transition wins; cancels the watchdog so the
        no-fault event schedule is untouched by the timeout machinery."""
        if self._requests.get(rid) != "pending":
            return False
        self._requests[rid] = status
        handle = self._watchdogs.pop(rid, None)
        if handle is not None and handle.cancel():
            # One cancelled entry per finished request: at open-loop
            # arrival rates this is the simulator's dominant heap churn
            # (the compaction machinery exists for exactly this), so
            # keep it observable.
            self._metrics.counter(
                "executor.watchdogs_cancelled", workflow=self._d.name
            ).inc()
        self._tracer.close_request(rid, status)
        self._metrics.counter(
            "executor.requests_finished", workflow=self._d.name, status=status
        ).inc()
        t0 = self._request_t0.pop(rid, None)
        if t0 is not None:
            self._latency_hist.observe(self._cloud.env.now() - t0)
        return True

    def _complete_request(self, rid: str) -> None:
        if self._finish_request(rid, "completed"):
            self._completed += 1

    def _fail_request(self, rid: str) -> None:
        if self._finish_request(rid, "failed"):
            self._failed += 1

    def _expire_request(self, rid: str) -> None:
        if self._requests.get(rid) == "pending":
            self._requests[rid] = "timed_out"
            self._watchdogs.pop(rid, None)
            self._timed_out += 1
            t0 = self._request_t0.pop(rid, None)
            if t0 is not None:
                self._latency_hist.observe(self._cloud.env.now() - t0)
            self._tracer.close_request(rid, "timed_out")
            self._metrics.counter(
                "executor.requests_finished",
                workflow=self._d.name,
                status="timed_out",
            ).inc()

    def _on_dead_letter(self, topic: str, message: Message, error: str) -> None:
        """Pub/sub gave up on one of our messages: the request cannot
        finish normally, so mark it failed."""
        if message.workflow != self._d.name:
            return
        if message.request_id:
            self._fail_request(message.request_id)

    def _guarded(self, rid: str, fn: Callable[[], None]) -> Callable[[], None]:
        """Wrap a scheduled continuation so a framework fault marks the
        request failed instead of crashing the event loop (exceptions in
        scheduled callbacks are not retried by pub/sub)."""

        def run() -> None:
            try:
                fn()
            except CaribouError:
                self._fail_request(rid)

        return run

    def request_status(self, rid: str) -> Optional[str]:
        """``"pending"``/``"completed"``/``"failed"``/``"timed_out"``, or
        ``None`` for unknown request ids."""
        return self._requests.get(rid)

    def pending_requests(self) -> Tuple[str, ...]:
        return tuple(
            rid for rid, status in self._requests.items() if status == "pending"
        )

    def reliability(self) -> ReliabilityStats:
        """Reliability counters for this workflow's run so far.

        ``injected`` is the cloud-wide fault tally (the injector is
        shared across workflows); the remaining counters are scoped to
        this workflow.
        """
        pubsub = self._cloud.pubsub
        return ReliabilityStats(
            injected=self._faults.snapshot() if self._faults is not None else {},
            retries=pubsub.retry_count(self._d.name),
            dead_letters=pubsub.dead_letter_count(self._d.name),
            home_fallbacks=self._home_fallbacks,
            completed_requests=self._completed,
            failed_requests=self._failed,
            timed_out_requests=self._timed_out,
        )

    # -- subclass hooks (the plain-SNS baseline overrides these) --------------------
    def _topic_for(self, function: str) -> str:
        return topic_name(self._d.name, function)

    def _message_bytes(self, payload_bytes: float) -> float:
        return message_size(payload_bytes, len(self._dag))

    # -- payload codec -------------------------------------------------------------
    @staticmethod
    def _encode_payload(payload: Payload) -> Dict:
        return {"content": payload.content, "size_bytes": payload.size_bytes}

    @staticmethod
    def _decode_payload(raw: Dict) -> Payload:
        return Payload(content=raw["content"], size_bytes=raw["size_bytes"])
