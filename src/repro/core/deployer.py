"""Initial deployment utility (paper §6.1, "Initial Deployment").

Mirrors the paper's CLI-driven steps:

1. static analysis over the source generates the workflow DAG;
2. the utility creates IAM roles, pushes the Docker image to the
   container registry, creates the function and its messaging topic in
   the home region with the function subscribed to it;
3. workflow metadata (including the initial DP) is uploaded to the
   distributed key-value store.

The home region "acts both as a fallback and a baseline" — the initial
plan is a no-expiry daily plan pinning everything there.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.cloud.functions import FunctionDeployment
from repro.cloud.provider import SimulatedCloud
from repro.common.errors import ConfigurationError, DeploymentError
from repro.common.units import mb
from repro.core.analysis import analyze_workflow
from repro.core.api import FunctionSpec, Workflow
from repro.core.executor import CaribouExecutor, DeployedWorkflow, topic_name
from repro.model.config import WorkflowConfig
from repro.model.dag import WorkflowDAG
from repro.model.plan import DeploymentPlan, HourlyPlanSet

#: Default container image size: a Python Lambda image with typical
#: scientific dependencies (§6.1 packages source into Docker images).
DEFAULT_IMAGE_SIZE_BYTES = mb(250)


class DeploymentUtility:
    """Deploys workflows for the first time and individual functions to
    new regions (the step the migrator replays)."""

    def __init__(self, cloud: SimulatedCloud):
        self._cloud = cloud

    def deploy(
        self,
        workflow: Workflow,
        config: WorkflowConfig,
        kv_region: Optional[str] = None,
        image_size_bytes: float = DEFAULT_IMAGE_SIZE_BYTES,
        dag: Optional["WorkflowDAG"] = None,
    ) -> Tuple[DeployedWorkflow, CaribouExecutor]:
        """Initial deployment to the home region.

        Function-level constraints declared in code (the decorator's
        ``regions_and_providers``) are merged into the manifest config;
        explicit manifest entries win when both exist.

        ``dag`` bypasses static analysis for workflows whose DAG was
        constructed explicitly (the ``repro.service`` builder API);
        without it the DAG is recovered from handler source as usual.
        """
        deployed, executor = self.attach(
            workflow, config, kv_region=kv_region, dag=dag, subscribe=False
        )
        config = deployed.config
        dag = deployed.dag

        home = config.home_region
        for spec in workflow.functions:
            # Step 2a: build and push the image once, to the home registry.
            self._cloud.registry.push(
                home,
                self._image_name(deployed, spec),
                workflow.version,
                image_size_bytes,
            )
            self.deploy_function(deployed, executor, spec, home)

        # Step 3: upload metadata + the initial (home, fallback) plan.
        kv = deployed.kv()
        kv.put(
            deployed.meta_table,
            "workflow",
            {
                "name": workflow.name,
                "version": workflow.version,
                "dag_signature": dag.subgraph_signature(),
                "home_region": home,
                "nodes": list(dag.node_names),
            },
            caller_region=home,
            workflow=workflow.name,
        )
        executor.stage_plan_set(
            HourlyPlanSet.daily(
                DeploymentPlan.single_region(dag, home),
                created_at_s=self._cloud.now(),
            )
        )
        return deployed, executor

    def attach(
        self,
        workflow: Workflow,
        config: WorkflowConfig,
        kv_region: Optional[str] = None,
        dag: Optional[WorkflowDAG] = None,
        subscribe: bool = True,
    ) -> Tuple[DeployedWorkflow, CaribouExecutor]:
        """Build fresh runtime handles for a workflow *without* deploying.

        The recovery path of the service engine: after an engine
        restart the cloud still holds the functions, topics, and staged
        plan, but the in-process ``DeployedWorkflow``/``CaribouExecutor``
        objects are gone.  ``attach`` reconstructs them and (when
        ``subscribe`` is set) re-subscribes the new executor to every
        existing function-region topic — ``pubsub.subscribe`` replaces
        the single subscriber, so stale closures from the dead engine
        are displaced rather than doubled.  No KV writes happen here:
        in particular the active plan staged before the crash survives.
        """
        if config.home_region not in self._cloud.regions:
            raise ConfigurationError(
                f"home region {config.home_region!r} is not offered by this "
                f"provider (available: {list(self._cloud.regions)})"
            )
        if dag is None:
            dag = analyze_workflow(workflow)

        merged = dict(config.function_constraints)
        for spec in workflow.functions:
            if spec.constraints is not None and spec.name not in merged:
                merged[spec.name] = spec.constraints
        config = dataclasses.replace(config, function_constraints=merged)

        deployed = DeployedWorkflow(
            workflow=workflow,
            dag=dag,
            config=config,
            cloud=self._cloud,
            kv_region=kv_region or config.home_region,
        )
        executor = CaribouExecutor(deployed)
        if subscribe:
            for fn_deployment in self._cloud.functions.deployments_of(
                workflow.name
            ):
                self._cloud.pubsub.subscribe(
                    topic_name(workflow.name, fn_deployment.function),
                    fn_deployment.region,
                    executor.make_subscriber(
                        fn_deployment.function, fn_deployment.region
                    ),
                )
        return deployed, executor

    def deploy_function(
        self,
        deployed: DeployedWorkflow,
        executor: CaribouExecutor,
        spec: FunctionSpec,
        region: str,
        copy_image_from: Optional[str] = None,
    ) -> None:
        """Deploy one function to one region (steps 2b-2d).

        When ``copy_image_from`` is given, the image is crane-copied from
        that region's registry instead of rebuilt (§6.1 Re-Deployment).
        Raises :class:`DeploymentError` (or a subclass such as
        ``RegionUnavailableError``) on failure; callers handle fallback.
        """
        if region not in self._cloud.regions:
            raise DeploymentError(
                f"region {region!r} is not offered by this provider"
            )
        workflow = deployed.workflow
        image = self._image_name(deployed, spec)
        if copy_image_from is not None:
            self._cloud.registry.copy_image(
                image,
                workflow.version,
                src_region=copy_image_from,
                dst_region=region,
                workflow=workflow.name,
            )
        elif not self._cloud.registry.exists(region, image, workflow.version):
            raise DeploymentError(
                f"image {image}:{workflow.version} absent in {region} and no "
                "copy source given"
            )

        role = f"{workflow.name}-{spec.name}-{region}"
        self._cloud.iam.create_role(role, dict(deployed.config.iam_policy))

        self._cloud.functions.deploy(
            FunctionDeployment(
                workflow=workflow.name,
                function=spec.name,
                region=region,
                handler=lambda body, ctx: None,  # executor always overrides
                memory_mb=spec.memory_mb,
                profile=spec.profile,
                image_reference=f"{image}:{workflow.version}",
                role_name=role,
            )
        )
        topic = topic_name(workflow.name, spec.name)
        self._cloud.pubsub.create_topic(topic, region)
        self._cloud.pubsub.subscribe(
            topic, region, executor.make_subscriber(spec.name, region)
        )

    def remove_function(
        self, deployed: DeployedWorkflow, spec: FunctionSpec, region: str
    ) -> None:
        """Tear one function-region deployment down (decommissioning)."""
        if region == deployed.config.home_region:
            raise DeploymentError(
                "refusing to remove the home-region deployment: it is the "
                "permanent fallback (§6.1)"
            )
        workflow = deployed.workflow
        self._cloud.functions.remove(workflow.name, spec.name, region)
        self._cloud.pubsub.delete_topic(topic_name(workflow.name, spec.name), region)
        self._cloud.iam.delete_role(f"{workflow.name}-{spec.name}-{region}")

    @staticmethod
    def _image_name(deployed: DeployedWorkflow, spec: FunctionSpec) -> str:
        return f"{deployed.name}/{spec.name}"
