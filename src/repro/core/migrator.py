"""Deployment Migrator (paper §6.1, "Re-Deployment").

Given a freshly solved plan set, the migrator determines which
(function, region) deployments are missing, replays deployment steps
2-3 for each — copying images between registries with crane rather than
rebuilding — and *activates* the plan set by updating the key-value
store only once every function is in place.  "If any function
re-deployment fails, the framework defaults to the home region
deployment", and the migrator "periodically retries the rollout of any
non-activated DP until it is replaced by a new one".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.common.errors import DeploymentError
from repro.core.deployer import DeploymentUtility
from repro.core.executor import CaribouExecutor, DeployedWorkflow
from repro.model.plan import HourlyPlanSet


@dataclass
class MigrationReport:
    """Outcome of one migration attempt."""

    activated: bool
    deployed: Tuple[Tuple[str, str], ...]  # (function, region) newly created
    failed: Optional[Tuple[str, str]] = None
    error: str = ""


class DeploymentMigrator:
    """Materialises plan sets across regions for one workflow."""

    def __init__(
        self,
        utility: DeploymentUtility,
        deployed: DeployedWorkflow,
        executor: CaribouExecutor,
    ):
        self._utility = utility
        self._d = deployed
        self._executor = executor
        self._pending: Optional[HourlyPlanSet] = None
        self.migrations_performed = 0
        self.activations = 0

    # -- queries ---------------------------------------------------------------
    def required_deployments(self, plan_set: HourlyPlanSet) -> Set[Tuple[str, str]]:
        """(function, region) pairs any hour of the plan set routes to."""
        needed: Set[Tuple[str, str]] = set()
        for plan in plan_set.distinct_plans():
            for node, region in plan.assignments.items():
                needed.add((self._d.dag.node(node).function, region))
        return needed

    def missing_deployments(self, plan_set: HourlyPlanSet) -> List[Tuple[str, str]]:
        functions = self._d.cloud.functions
        return sorted(
            (fn, region)
            for fn, region in self.required_deployments(plan_set)
            if not functions.is_deployed(self._d.name, fn, region)
        )

    @property
    def pending(self) -> Optional[HourlyPlanSet]:
        """A solved-but-not-yet-activated plan set awaiting retry."""
        return self._pending

    # -- migration ----------------------------------------------------------------
    def migrate(self, plan_set: HourlyPlanSet) -> MigrationReport:
        """Deploy whatever the plan set needs, then activate it.

        On any failure the plan is *not* activated: traffic falls back to
        the home region (the executor's per-publish fallback plus the
        cleared active plan), and the plan set is parked for
        :meth:`retry_pending`.
        """
        home = self._d.config.home_region
        created: List[Tuple[str, str]] = []
        for function, region in self.missing_deployments(plan_set):
            spec = self._d.workflow.function(function)
            try:
                self._utility.deploy_function(
                    self._d,
                    self._executor,
                    spec,
                    region,
                    copy_image_from=home,
                )
            except DeploymentError as exc:
                self._pending = plan_set
                self._executor.clear_plan()  # default back to home (§6.1)
                return MigrationReport(
                    activated=False,
                    deployed=tuple(created),
                    failed=(function, region),
                    error=str(exc),
                )
            created.append((function, region))
            self.migrations_performed += 1

        self._executor.stage_plan_set(plan_set)
        self._pending = None
        self.activations += 1
        return MigrationReport(activated=True, deployed=tuple(created))

    def retry_pending(self) -> Optional[MigrationReport]:
        """Retry a parked rollout (§6.1).  No-op when nothing is pending."""
        if self._pending is None:
            return None
        return self.migrate(self._pending)

    def replace_pending(self, plan_set: HourlyPlanSet) -> None:
        """A newer plan supersedes a parked one ("until it is replaced
        by a new one")."""
        self._pending = plan_set

    # -- housekeeping -----------------------------------------------------------------
    def decommission_unused(self, plan_set: HourlyPlanSet) -> List[Tuple[str, str]]:
        """Remove function deployments no plan hour routes to, keeping
        the home region untouched (it is the permanent fallback)."""
        needed = self.required_deployments(plan_set)
        home = self._d.config.home_region
        removed: List[Tuple[str, str]] = []
        for deployment in self._d.cloud.functions.deployments_of(self._d.name):
            key = (deployment.function, deployment.region)
            if deployment.region == home or key in needed:
                continue
            spec = self._d.workflow.function(deployment.function)
            self._utility.remove_function(self._d, spec, deployment.region)
            removed.append(key)
        return removed
