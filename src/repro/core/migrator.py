"""Deployment Migrator (paper §6.1, "Re-Deployment").

Given a freshly solved plan set, the migrator determines which
(function, region) deployments are missing, replays deployment steps
2-3 for each — copying images between registries with crane rather than
rebuilding — and *activates* the plan set by updating the key-value
store only once every function is in place.  "If any function
re-deployment fails, the framework defaults to the home region
deployment", and the migrator "periodically retries the rollout of any
non-activated DP until it is replaced by a new one".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.common.errors import CaribouError
from repro.core.deployer import DeploymentUtility
from repro.core.executor import META_PLAN_KEY, CaribouExecutor, DeployedWorkflow
from repro.model.plan import HourlyPlanSet
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER


@dataclass
class MigrationReport:
    """Outcome of one migration attempt."""

    activated: bool
    deployed: Tuple[Tuple[str, str], ...]  # (function, region) newly created
    failed: Optional[Tuple[str, str]] = None
    error: str = ""
    #: Partially created deployments removed again after a failure.
    rolled_back: Tuple[Tuple[str, str], ...] = ()


class DeploymentMigrator:
    """Materialises plan sets across regions for one workflow."""

    def __init__(
        self,
        utility: DeploymentUtility,
        deployed: DeployedWorkflow,
        executor: CaribouExecutor,
    ):
        self._utility = utility
        self._d = deployed
        self._executor = executor
        self._tracer = getattr(deployed.cloud, "tracer", NULL_TRACER)
        self._metrics = getattr(deployed.cloud, "metrics", NULL_METRICS)
        self._pending: Optional[HourlyPlanSet] = None
        self.migrations_performed = 0
        self.activations = 0

    # -- queries ---------------------------------------------------------------
    def required_deployments(self, plan_set: HourlyPlanSet) -> Set[Tuple[str, str]]:
        """(function, region) pairs any hour of the plan set routes to."""
        needed: Set[Tuple[str, str]] = set()
        for plan in plan_set.distinct_plans():
            for node, region in plan.assignments.items():
                needed.add((self._d.dag.node(node).function, region))
        return needed

    def missing_deployments(self, plan_set: HourlyPlanSet) -> List[Tuple[str, str]]:
        functions = self._d.cloud.functions
        return sorted(
            (fn, region)
            for fn, region in self.required_deployments(plan_set)
            if not functions.is_deployed(self._d.name, fn, region)
        )

    @property
    def pending(self) -> Optional[HourlyPlanSet]:
        """A solved-but-not-yet-activated plan set awaiting retry."""
        return self._pending

    # -- migration ----------------------------------------------------------------
    def migrate(self, plan_set: HourlyPlanSet) -> MigrationReport:
        """Deploy whatever the plan set needs, then activate it.

        On any failure the plan is *not* activated: partially created
        deployments are rolled back (no leaked functions/topics/roles in
        regions no active plan routes to), the still-valid active plan —
        if it is a *different* plan set — is left in place, and the
        failed plan set is parked for :meth:`retry_pending`.
        """
        self._metrics.counter(
            "migration.attempts", workflow=self._d.name
        ).inc()
        with self._tracer.span(
            "migration", self._d.name, workflow=self._d.name
        ) as scope:
            report = self._do_migrate(plan_set)
            scope.set(
                activated=report.activated,
                n_deployed=len(report.deployed),
                n_rolled_back=len(report.rolled_back),
            )
            if report.failed is not None:
                scope.set(failed=f"{report.failed[0]}@{report.failed[1]}")
        if report.activated:
            self._metrics.counter(
                "migration.activations", workflow=self._d.name
            ).inc()
        else:
            self._metrics.counter(
                "migration.failures", workflow=self._d.name
            ).inc()
        return report

    def _do_migrate(self, plan_set: HourlyPlanSet) -> MigrationReport:
        home = self._d.config.home_region
        created: List[Tuple[str, str]] = []
        for function, region in self.missing_deployments(plan_set):
            spec = self._d.workflow.function(function)
            try:
                with self._tracer.span(
                    "deploy",
                    f"{function}@{region}",
                    workflow=self._d.name,
                    function=function,
                    region=region,
                ):
                    self._utility.deploy_function(
                        self._d,
                        self._executor,
                        spec,
                        region,
                        copy_image_from=home,
                    )
            except CaribouError as exc:
                self._pending = plan_set
                rolled_back = self._rollback(created)
                self._metrics.counter(
                    "migration.rollbacks", workflow=self._d.name
                ).inc(len(rolled_back))
                # Only default back to home (§6.1) when the *failing*
                # plan set is the one currently active: clearing an
                # unrelated, fully materialised plan set would discard
                # valid routing for no reason.
                if self._is_active(plan_set):
                    self._executor.clear_plan()
                return MigrationReport(
                    activated=False,
                    deployed=tuple(created),
                    failed=(function, region),
                    error=str(exc),
                    rolled_back=rolled_back,
                )
            created.append((function, region))
            self.migrations_performed += 1
            self._metrics.counter(
                "migration.deploys", workflow=self._d.name
            ).inc()

        try:
            self._executor.stage_plan_set(plan_set)
        except CaribouError as exc:
            # Activation itself failed (KV store unreachable): keep the
            # materialised deployments — they are what the parked plan
            # needs — and retry activation later.
            self._pending = plan_set
            return MigrationReport(
                activated=False,
                deployed=tuple(created),
                error=str(exc),
            )
        self._pending = None
        self.activations += 1
        return MigrationReport(activated=True, deployed=tuple(created))

    def _rollback(self, created: List[Tuple[str, str]]) -> Tuple[Tuple[str, str], ...]:
        """Remove partially created deployments, newest first.  Removal
        failures (e.g. the region went dark mid-rollback) are tolerated:
        the remaining entries are still attempted."""
        rolled_back: List[Tuple[str, str]] = []
        for function, region in reversed(created):
            spec = self._d.workflow.function(function)
            try:
                self._utility.remove_function(self._d, spec, region)
            except CaribouError:
                continue
            rolled_back.append((function, region))
        return tuple(rolled_back)

    def _is_active(self, plan_set: HourlyPlanSet) -> bool:
        """Whether ``plan_set`` is the currently activated one."""
        try:
            raw, _lat = self._d.kv().get(
                self._d.meta_table,
                META_PLAN_KEY,
                caller_region=self._d.config.home_region,
                workflow=self._d.name,
            )
        except CaribouError:
            return False
        return raw is not None and raw == plan_set.to_dict()

    def retry_pending(self) -> Optional[MigrationReport]:
        """Retry a parked rollout (§6.1).  No-op when nothing is pending."""
        if self._pending is None:
            return None
        return self.migrate(self._pending)

    def replace_pending(self, plan_set: HourlyPlanSet) -> None:
        """A newer plan supersedes a parked one ("until it is replaced
        by a new one")."""
        self._pending = plan_set

    # -- housekeeping -----------------------------------------------------------------
    def decommission_unused(self, plan_set: HourlyPlanSet) -> List[Tuple[str, str]]:
        """Remove function deployments no plan hour routes to, keeping
        the home region untouched (it is the permanent fallback)."""
        needed = self.required_deployments(plan_set)
        home = self._d.config.home_region
        removed: List[Tuple[str, str]] = []
        for deployment in self._d.cloud.functions.deployments_of(self._d.name):
            key = (deployment.function, deployment.region)
            if deployment.region == home or key in needed:
                continue
            spec = self._d.workflow.function(deployment.function)
            self._utility.remove_function(self._d, spec, deployment.region)
            removed.append(key)
        return removed
