"""Fig. 10 — carbon efficiency under latency (runtime) tolerances.

For DNA Visualization and Image Processing, sweep the developer's
runtime tolerance from 0 % to 10 % and report, per transmission
scenario: *relative carbon* (vs the home deployment) and *relative
time* — the 95th-percentile service time over the QoS bound (home-region
p95 augmented by the tolerance).  Relative time <= 1.0 means QoS met.

Shape: offloading freedom (and carbon savings) grows with tolerance;
the framework's conservative tail modelling keeps measured relative
time near or below 1.0; the single-stage DNA workflow is all-or-nothing
while Image Processing offloads progressively (§9.4).
"""

from typing import Dict, Tuple

import pytest

from conftest import BENCH_SOLVER, print_header
from repro.apps import get_app
from repro.experiments.harness import run_caribou, run_coarse
from repro.metrics.carbon import TransmissionScenario
from repro.model.config import Tolerances

TOLERANCES = (0.0, 0.025, 0.05, 0.075, 0.10)
APPS = ("dna_visualization", "image_processing")
REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")
SCENARIOS = {
    "best-case": TransmissionScenario.best_case(),
    "worst-case": TransmissionScenario.worst_case(),
}


@pytest.fixture(scope="module")
def tolerance_results():
    """(app, scenario, tolerance) -> (relative carbon, relative time)."""
    out: Dict[Tuple[str, str, float], Tuple[float, float]] = {}
    for app_name in APPS:
        app = get_app(app_name)
        home = run_coarse(app, "small", "us-east-1", seed=300,
                          n_invocations=20, days=3.0)
        for scenario_name, scenario in SCENARIOS.items():
            for tolerance in TOLERANCES:
                fine = run_caribou(
                    app, "small", REGIONS, seed=300, n_invocations=20,
                    warmup=10, days=3.0, scenario_for_solver=scenario,
                    tolerances=Tolerances(latency=tolerance),
                    solver_settings=BENCH_SOLVER,
                )
                rel_carbon = (
                    fine.carbon(scenario_name) / home.carbon(scenario_name)
                )
                qos = home.p95_service_time_s * (1.0 + tolerance)
                rel_time = fine.p95_service_time_s / qos
                out[(app_name, scenario_name, tolerance)] = (
                    rel_carbon, rel_time,
                )
    return out


def test_fig10_tolerance(tolerance_results, benchmark):
    print_header("Fig. 10 — relative carbon / relative time vs runtime "
                 "tolerance")
    for app_name in APPS:
        print(f"\n--- {app_name} ---")
        print(f"{'tolerance':>9s}  " + "  ".join(
            f"{s:>22s}" for s in SCENARIOS
        ))
        for tolerance in TOLERANCES:
            cells = []
            for scenario_name in SCENARIOS:
                rc, rt = tolerance_results[(app_name, scenario_name, tolerance)]
                cells.append(f"C={rc:5.2f} T={rt:5.2f}")
            print(f"{tolerance:8.1%}  " + "  ".join(f"{c:>22s}" for c in cells))

    for app_name in APPS:
        for scenario_name in SCENARIOS:
            series = [
                tolerance_results[(app_name, scenario_name, t)]
                for t in TOLERANCES
            ]
            carbons = [c for c, _t in series]
            times = [t for _c, t in series]
            # More freedom never hurts much: the loosest tolerance's
            # carbon is no worse than the tightest one's.
            assert carbons[-1] <= carbons[0] * 1.10
            # Measured tails stay in the QoS neighbourhood — the solver
            # enforces the bound on *modelled* tails, so allow the
            # simulation noise band the paper's Fig. 10 also shows.
            assert all(t < 1.25 for t in times), (app_name, scenario_name,
                                                  times)

    # Best case: with 10 % tolerance both apps should find real savings.
    for app_name in APPS:
        rc, _ = tolerance_results[(app_name, "best-case", 0.10)]
        assert rc < 0.95, f"{app_name} found no best-case savings at 10 %"

    # Timed kernel: a tolerance-constrained solve.
    app = get_app("dna_visualization")
    benchmark.pedantic(
        lambda: run_caribou(
            app, "small", REGIONS, seed=301, n_invocations=4, warmup=4,
            days=0.5, tolerances=Tolerances(latency=0.05),
            solver_settings=BENCH_SOLVER,
        ),
        rounds=1, iterations=1,
    )
