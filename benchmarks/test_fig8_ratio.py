"""Fig. 8 — normalised carbon vs execution/transmission carbon ratio.

"Geospatial shifting offers more carbon savings with increased
Execution / Transmission ratio" (§9.2 I4): compute-heavy workflows
(high ratio) approach the grid differential's full leverage, while
transmission-heavy ones (Image Processing) are pinned near 1.0.  Reuses
the Fig. 7 Caribou-all runs; the ratio comes from the home-region runs'
modelled energy split, as in the paper.
"""

import math

import numpy as np

from conftest import INPUT_SIZES, normalized_carbon, print_header
from repro.apps import ALL_APPS
from repro.experiments.harness import geometric_mean


def test_fig8_ratio_vs_savings(fig7_results, benchmark):
    print_header("Fig. 8 — normalised carbon vs exec/transmission ratio")

    points = []  # (ratio, normalised carbon, app, size, scenario)
    for scenario in ("best-case", "worst-case"):
        for app_name in sorted(ALL_APPS):
            for size in INPUT_SIZES:
                home = fig7_results[(app_name, size, "coarse:us-east-1")][scenario]
                stats = home.per_scenario[scenario]
                ratio = stats.exec_to_trans_ratio
                if not math.isfinite(ratio):
                    continue
                value = normalized_carbon(
                    fig7_results, app_name, size, "fine:all", scenario
                )
                points.append((ratio, value, app_name, size, scenario))

    print(f"{'app':24s} {'size':6s} {'scenario':11s} {'ratio':>8s} "
          f"{'norm carbon':>11s}")
    for ratio, value, app_name, size, scenario in sorted(points):
        print(f"{app_name:24s} {size:6s} {scenario:11s} {ratio:8.2f} "
              f"{value:11.3f}")

    # Shape: higher exec/trans ratio correlates with lower normalised
    # carbon (more savings).  Use the best-case series as in the figure's
    # main trend.
    best_points = [(r, v) for r, v, *_rest in points if _rest[2] == "best-case"]
    ratios = np.log10([p[0] for p in best_points])
    values = [p[1] for p in best_points]
    correlation = np.corrcoef(ratios, values)[0, 1]
    print(f"\nlog10(ratio) vs normalised-carbon correlation "
          f"(best case): {correlation:.2f}")
    assert correlation < -0.4, "savings should grow with the exec/trans ratio"

    # The transmission-heaviest workload saves least; a compute-heavy
    # one saves most (best case).
    by_app_best = {
        a: geometric_mean([
            v for r, v, app, s, sc in points
            if app == a and sc == "best-case"
        ])
        for a in sorted(ALL_APPS)
    }
    assert by_app_best["image_processing"] == max(by_app_best.values())
    assert min(by_app_best, key=by_app_best.get) in (
        "dna_visualization", "video_analytics", "text2speech_censoring",
        "rag_ingestion",
    )

    # Timed kernel: re-pricing a stored run under a fresh scenario.
    from repro.metrics.accounting import CarbonAccountant
    from repro.metrics.carbon import CarbonModel, TransmissionScenario
    from repro.data.carbon import CarbonIntensitySource

    source = CarbonIntensitySource(hours=24 * 7, seed=100)
    accountant = CarbonAccountant(
        source, CarbonModel(TransmissionScenario.best_case())
    )
    benchmark(lambda: accountant.with_scenario(TransmissionScenario.equal(0.002)))
