"""Ablation — Monte-Carlo stopping rule (DESIGN.md §5).

§7.1 runs simulations in batches of 200 until the estimator's
coefficient of variation drops below 0.05, capped at 2,000 samples.
This bench compares that adaptive rule against fixed sample counts:
estimate error (vs a 20,000-sample reference) and samples spent.
"""

import numpy as np

from conftest import print_header
from repro.data.latency import LatencySource
from repro.data.pricing import PricingSource
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.distributions import EmpiricalDistribution
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.montecarlo import MonteCarloEstimator
from repro.model.dag import Edge, Node, WorkflowDAG
from repro.model.plan import DeploymentPlan


class NoisyData:
    """High-variance behaviour: wide durations, bimodal conditional."""

    def execution_time_dist(self, node, region):
        return EmpiricalDistribution([0.2, 0.5, 1.0, 2.0, 6.0])

    def edge_probability(self, src, dst):
        return 0.4

    def edge_size_dist(self, src, dst):
        return EmpiricalDistribution([1e4, 1e6, 2e7])

    def node_memory_mb(self, node):
        return 1769

    def node_vcpu(self, node):
        return 1.0

    def node_cpu_utilization(self, node):
        return 0.7

    def node_external_bytes(self, node):
        return None, 0.0

    def input_size_dist(self):
        return EmpiricalDistribution([0.0])


def make_dag():
    dag = WorkflowDAG("mc")
    for n in ("a", "b", "c", "d", "e"):
        dag.add_node(Node(n, n))
    dag.add_edge(Edge("a", "b"))
    dag.add_edge(Edge("a", "c", conditional=True))
    dag.add_edge(Edge("b", "d"))
    dag.add_edge(Edge("c", "d"))
    dag.add_edge(Edge("d", "e"))
    dag.validate()
    return dag


def make_estimator(dag, batch, max_samples, cov, seed=0):
    return MonteCarloEstimator(
        dag, NoisyData(),
        CarbonModel(TransmissionScenario.best_case()),
        CostModel(PricingSource()),
        TransferLatencyModel(LatencySource()),
        np.random.default_rng(seed),
        batch_size=batch, max_samples=max_samples, cov_threshold=cov,
    )


def test_ablation_mc_stopping_rule(benchmark):
    print_header("Ablation — Monte-Carlo stopping rule")
    dag = make_dag()
    plan = DeploymentPlan.single_region(dag, "us-east-1")
    carbon_at = lambda r: 400.0

    reference = make_estimator(dag, 1000, 20000, 1e-12, seed=99).estimate(
        plan, carbon_at
    )
    print(f"reference (n={reference.n_samples}): "
          f"latency {reference.mean_latency_s:.3f}s, "
          f"carbon {reference.mean_carbon_g * 1000:.4f} mg")

    configs = (
        ("paper adaptive (200/0.05/2000)", 200, 2000, 0.05),
        ("fixed 100", 100, 100, 1e-12),
        ("fixed 500", 500, 500, 1e-12),
        ("fixed 2000", 2000, 2000, 1e-12),
    )
    print(f"\n{'config':32s} {'samples':>8s} {'lat err':>8s} {'carb err':>9s}")
    errors = {}
    for name, batch, max_s, cov in configs:
        # Average error across independent seeds for a stable comparison.
        lat_errs, carb_errs, samples = [], [], []
        for seed in range(5):
            est = make_estimator(dag, batch, max_s, cov, seed=seed).estimate(
                plan, carbon_at
            )
            lat_errs.append(
                abs(est.mean_latency_s - reference.mean_latency_s)
                / reference.mean_latency_s
            )
            carb_errs.append(
                abs(est.mean_carbon_g - reference.mean_carbon_g)
                / reference.mean_carbon_g
            )
            samples.append(est.n_samples)
        errors[name] = (np.mean(samples), np.mean(lat_errs), np.mean(carb_errs))
        print(f"{name:32s} {np.mean(samples):8.0f} {np.mean(lat_errs):7.1%} "
              f"{np.mean(carb_errs):8.1%}")

    adaptive = errors["paper adaptive (200/0.05/2000)"]
    fixed100 = errors["fixed 100"]
    fixed2000 = errors["fixed 2000"]
    # The adaptive rule is accurate enough for plan ranking...
    assert adaptive[1] < 0.10 and adaptive[2] < 0.10
    # ...cheaper than always paying the cap...
    assert adaptive[0] <= 2000
    # ...and no less accurate than a blunt small fixed budget.
    assert adaptive[1] <= fixed100[1] * 1.5 + 0.02

    benchmark(
        lambda: make_estimator(dag, 200, 2000, 0.05).estimate(plan, carbon_at)
    )
