"""Fig. 9 — normalised carbon vs transmission energy factor.

Sweeps EF_trans over 1e-5..1e-1 kWh/GB under the paper's two accounting
scenarios: equal intra/inter factor (scenario 1) and free intra-region
transmission (scenario 2).  For each point Caribou re-solves (the solver
sees the swept factor) and the measured runs are priced with it, then
normalised to the coarse us-east-1 deployment under the same factor.

Shape: normalised carbon is (weakly) monotone in EF — cheaper
transmission unlocks more shifting — approaching the grid-differential
limit (~90 % reduction, §9.3) as EF -> 0, and approaching/passing 1.0 as
EF grows.
"""

from typing import Dict, Tuple

import pytest

from conftest import print_header
from repro.apps import ALL_APPS, get_app
from repro.core.solver import SolverSettings
from repro.experiments.harness import (
    geometric_mean,
    run_caribou,
    run_coarse,
)
from repro.metrics.carbon import TransmissionScenario

EF_GRID = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
SIZES = ("small", "large")
REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")
#: 100 sweep cells: use a cheap solver — the monotone EF trend does not
#: need a near-optimal plan, just a scenario-aware one.
SWEEP_SOLVER = SolverSettings(batch_size=30, max_samples=90,
                              cov_threshold=0.15, alpha_per_node_region=2)


def scenario_for(kind: str, ef: float) -> TransmissionScenario:
    if kind == "equal":
        return TransmissionScenario.equal(ef)
    return TransmissionScenario.free_intra(ef)


@pytest.fixture(scope="module")
def sweep_results() -> Dict[Tuple[str, str, str, float], float]:
    """(kind, app, size, ef) -> normalised carbon."""
    out: Dict[Tuple[str, str, str, float], float] = {}
    for kind in ("equal", "free-intra"):
        for app_name in sorted(ALL_APPS):
            app = get_app(app_name)
            for size in SIZES:
                for ef in EF_GRID:
                    scenario = scenario_for(kind, ef)
                    baseline = run_coarse(
                        app, size, "us-east-1", seed=200,
                        n_invocations=10, days=2.0, scenarios=[scenario],
                    )
                    fine = run_caribou(
                        app, size, REGIONS, seed=200, n_invocations=10,
                        warmup=8, days=2.0, scenario_for_solver=scenario,
                        scenarios=[scenario], solver_settings=SWEEP_SOLVER,
                    )
                    out[(kind, app_name, size, ef)] = (
                        fine.carbon(scenario.name)
                        / baseline.carbon(scenario.name)
                    )
    return out


def test_fig9_ef_sweep(sweep_results, benchmark):
    print_header("Fig. 9 — geometric-mean normalised carbon vs EF_trans")
    print(f"{'EF (kWh/GB)':>12s} {'equal intra/inter':>18s} "
          f"{'free intra':>12s}")

    geomeans = {}
    for ef in EF_GRID:
        row = []
        for kind in ("equal", "free-intra"):
            values = [
                sweep_results[(kind, a, s, ef)]
                for a in sorted(ALL_APPS) for s in SIZES
            ]
            geomeans[(kind, ef)] = geometric_mean(values)
            row.append(geomeans[(kind, ef)])
        print(f"{ef:12.0e} {row[0]:18.3f} {row[1]:12.3f}")

    for kind in ("equal", "free-intra"):
        series = [geomeans[(kind, ef)] for ef in EF_GRID]
        # Weak monotonicity: cheaper transmission can only help.
        for lo, hi in zip(series, series[1:]):
            assert lo <= hi * 1.12, (
                f"{kind}: normalised carbon not monotone in EF: {series}"
            )
        # As EF -> 0 the reduction approaches the grid-differential
        # limit (§9.3 reports 91.2 % geometric mean).
        reduction_at_zero = 1.0 - series[0]
        print(f"{kind}: reduction at EF=1e-5 is {reduction_at_zero:.1%} "
              f"[paper: ~91.2 % as EF->0]")
        assert reduction_at_zero > 0.70

    # At a huge factor there is little to gain — the equal scenario's
    # normalised carbon rises towards (or past) the home baseline.
    assert geomeans[("equal", 1e-1)] > geomeans[("equal", 1e-5)] + 0.1

    # Timed kernel: one sweep cell at bench fidelity.
    app = get_app("dna_visualization")
    scenario = scenario_for("equal", 1e-3)
    benchmark.pedantic(
        lambda: run_caribou(
            app, "small", REGIONS, seed=201, n_invocations=4, warmup=4,
            days=0.5, scenario_for_solver=scenario, scenarios=[scenario],
            solver_settings=SWEEP_SOLVER,
        ),
        rounds=1, iterations=1,
    )
