"""Fig. 11 — week-long self-adaptive operation of Text2Speech Censoring.

Runs the full Deployment Manager loop (token bucket + Holt-Winters
forecasting + HBSS + migration) against Azure-trace-shaped traffic for
the carbon week, under both transmission scenarios.  Reported like the
paper's figure: the deployment decision in force over time (modal region
of the executed invocations per 6-hour bucket), DP-generation marks, and
the relative carbon of Caribou vs the coarse single-region baselines.

Shape: several DP generations occur (an initial learning phase, then a
lower frequency, §9.5); under the best case the workflow chases the
lowest-carbon region; under the worst case the large input's audio
transmission keeps most nodes at home; Caribou's weekly carbon beats the
home baseline in both scenarios.
"""

from collections import Counter
from typing import Dict

import pytest

from conftest import BENCH_SOLVER, print_header
from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.core.manager import DeploymentManager
from repro.core.trigger import TriggerSettings
from repro.data.traces import azure_like_trace
from repro.experiments.harness import deploy_benchmark, run_coarse
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel

DAYS = 5.5
DAILY_INVOCATIONS = 250  # scaled-down Azure trace; overheads amortise
APP = "text2speech_censoring"
SIZE = "large"


def run_week(scenario: TransmissionScenario, seed: int = 400):
    cloud = SimulatedCloud(seed=seed)
    app = get_app(APP)
    deployed, executor, utility = deploy_benchmark(
        app, cloud, benchmarking_fraction=0.10,
    )
    dm = DeploymentManager(
        deployed, executor, utility, scenario=scenario,
        solver_settings=BENCH_SOLVER,
        trigger_settings=TriggerSettings(
            min_check_period_s=6 * SECONDS_PER_HOUR,
            max_check_period_s=SECONDS_PER_DAY,
        ),
        use_forecast=False,  # the horizon is the first week itself
    )
    trace = azure_like_trace(
        days=DAYS, mean_daily_invocations=DAILY_INVOCATIONS, seed=seed,
    )
    rids = []
    for t in trace:
        cloud.env.schedule(
            t, lambda: rids.append(executor.invoke(app.make_input(SIZE)))
        )
    dm.run_for(DAYS * SECONDS_PER_DAY, first_check_delay_s=2 * SECONDS_PER_HOUR)
    cloud.run_until_idle()

    # Per-6-hour modal execution region (the figure's top line).
    buckets: Dict[int, Counter] = {}
    for rec in cloud.ledger.executions_for(deployed.name):
        bucket = int(rec.start_s // (6 * SECONDS_PER_HOUR))
        buckets.setdefault(bucket, Counter())[rec.region] += 1
    timeline = {
        b: counter.most_common(1)[0][0] for b, counter in sorted(buckets.items())
    }

    accountant = CarbonAccountant(
        cloud.carbon_source, CarbonModel(scenario), CostModel(cloud.pricing_source)
    )
    fp = accountant.price_workflow(cloud.ledger, deployed.name)
    per_invocation = fp.carbon_g / max(1, len(rids))
    return {
        "timeline": timeline,
        "plan_generations": [t for t, _ps in dm.plan_history],
        "checks": len(dm.reports),
        "carbon_per_invocation": per_invocation,
        "n_invocations": len(rids),
    }


@pytest.fixture(scope="module")
def week_results():
    return {
        "best-case": run_week(TransmissionScenario.best_case()),
        "worst-case": run_week(TransmissionScenario.worst_case()),
    }


@pytest.fixture(scope="module")
def coarse_baselines():
    app = get_app(APP)
    out = {}
    for region in ("us-east-1", "us-west-1", "us-west-2"):
        result = run_coarse(app, SIZE, region, seed=400, n_invocations=30,
                            days=DAYS)
        out[region] = {
            s: result.carbon(s) for s in ("best-case", "worst-case")
        }
    return out


def test_fig11_week_timeline(week_results, coarse_baselines, benchmark):
    print_header(f"Fig. 11 — week of Caribou decisions, {APP} ({SIZE})")
    for scenario, result in week_results.items():
        print(f"\n--- {scenario} ---")
        print(f"DP generations at (h): "
              f"{[round(t / 3600, 1) for t in result['plan_generations']]}")
        print(f"token checks: {result['checks']}, "
              f"invocations: {result['n_invocations']}")
        line = []
        for bucket, region in result["timeline"].items():
            line.append(f"{bucket * 6:>3d}h:{region}")
        print("timeline (6 h buckets, modal execution region):")
        for i in range(0, len(line), 6):
            print("   " + "  ".join(line[i : i + 6]))
        print(f"carbon/invocation: {result['carbon_per_invocation'] * 1000:.3f} "
              f"mgCO2eq")
        for region, carbons in coarse_baselines.items():
            print(f"  coarse {region}: {carbons[scenario] * 1000:.3f} mg")

    # Self-adaptive cadence: more than one DP generation over the week.
    for scenario, result in week_results.items():
        assert len(result["plan_generations"]) >= 2, scenario
        assert result["checks"] >= len(result["plan_generations"])

    # Caribou beats the home baseline in both scenarios.
    for scenario, result in week_results.items():
        home = coarse_baselines["us-east-1"][scenario]
        assert result["carbon_per_invocation"] < home, (
            scenario, result["carbon_per_invocation"], home,
        )

    # Best case: after the learning phase, execution leaves the home
    # region for cleaner grids in a clear majority of buckets.
    best = week_results["best-case"]
    learning_cutoff = (best["plan_generations"][0] // (6 * 3600)) + 1
    post = [r for b, r in best["timeline"].items() if b > learning_cutoff]
    offloaded = sum(1 for r in post if r != "us-east-1")
    print(f"\nbest-case: {offloaded}/{len(post)} post-learning buckets "
          f"executed away from home")
    assert offloaded > len(post) * 0.5

    # Worst case: charging inter-region transmission (0.005 kWh/GB) for
    # the heavy audio makes offloading strictly less attractive than in
    # the best case.  (Our synthetic T2S profile is compute-heavier than
    # the paper's AWS-measured one, so full home-pinning does not
    # reproduce; the monotone relationship between the scenarios does.)
    worst = week_results["worst-case"]
    home_of = lambda result: sum(
        1 for r in result["timeline"].values() if r == "us-east-1"
    )
    assert home_of(worst) >= home_of(best)
    assert worst["carbon_per_invocation"] > best["carbon_per_invocation"]

    # Timed kernel: one DM check cycle on a fresh deployment.
    cloud = SimulatedCloud(seed=401)
    app = get_app(APP)
    deployed, executor, utility = deploy_benchmark(app, cloud)
    dm = DeploymentManager(
        deployed, executor, utility,
        scenario=TransmissionScenario.best_case(),
        solver_settings=BENCH_SOLVER, use_forecast=False,
    )
    benchmark.pedantic(dm.check, rounds=1, iterations=1)
