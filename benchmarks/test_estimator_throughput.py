"""Throughput — vectorized vs scalar Monte-Carlo kernel.

The solver's inner loop is ``MonteCarloEstimator.estimate_profile``;
vectorizing it (batched draws + array pricing) is what makes the 24-hour
HBSS solve cheap.  This bench measures samples/second of the vectorized
kernel against the retained scalar reference path on the Text2Speech
benchmark (5 stages, conditional edge, sync node, pinned external data —
every pricing path exercised) and asserts the >=5x target.

The two kernels consume the same RNG stream and perform the same
arithmetic per element, so before timing we also cross-check that they
agree bit-for-bit on this real workflow.
"""

import time

import numpy as np
import pytest

from conftest import print_header
from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.experiments.harness import deploy_benchmark, warm_up
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.manager import MetricsManager
from repro.metrics.montecarlo import MonteCarloEstimator
from repro.model.plan import DeploymentPlan

SPEEDUP_TARGET = 5.0


def _text2speech_metrics():
    """Deploy Text2Speech, warm it up, and return learned metrics."""
    app = get_app("text2speech_censoring")
    cloud = SimulatedCloud(seed=7)
    deployed, executor, _utility = deploy_benchmark(app, cloud)
    warm_up(executor, app, "small", n=12)
    metrics = MetricsManager(
        deployed.dag, deployed.config, cloud.ledger, cloud.carbon_source
    )
    for spec in deployed.workflow.functions:
        if spec.external_data is not None:
            for node in deployed.dag.node_names:
                if deployed.dag.node(node).function == spec.name:
                    metrics.declare_external_data(
                        node,
                        spec.external_data.region,
                        spec.external_data.size_bytes,
                    )
    metrics.collect(cloud.now())
    return cloud, deployed, metrics


def _make_estimator(cloud, deployed, metrics, vectorized, seed=0):
    return MonteCarloEstimator(
        deployed.dag,
        metrics,
        CarbonModel(TransmissionScenario.best_case()),
        CostModel(cloud.pricing_source),
        TransferLatencyModel(cloud.latency_source),
        np.random.default_rng(seed),
        kv_region=deployed.kv_region,
        client_region=deployed.config.home_region,
        batch_size=200,
        max_samples=2000,
        cov_threshold=1e-9,  # force the full 2000 samples every run
        vectorized=vectorized,
    )


def _spread_plan(dag, regions):
    """A multi-region plan so cross-region pricing paths are timed too."""
    return DeploymentPlan(
        {
            node: regions[i % len(regions)]
            for i, node in enumerate(dag.node_names)
        }
    )


def _samples_per_second(est, plan, n_runs):
    total = 0
    t0 = time.perf_counter()
    for _ in range(n_runs):
        total += est.estimate_profile(plan).n_samples
    return total / (time.perf_counter() - t0)


@pytest.mark.throughput
def test_estimator_throughput():
    print_header("Throughput — vectorized vs scalar Monte-Carlo kernel")
    cloud, deployed, metrics = _text2speech_metrics()
    plan = _spread_plan(deployed.dag, cloud.regions)

    # Cross-check first: same seed -> bit-identical estimates.
    carbon_at = lambda r: 400.0  # noqa: E731
    vec_est = _make_estimator(cloud, deployed, metrics, vectorized=True)
    ref_est = _make_estimator(cloud, deployed, metrics, vectorized=False)
    assert vec_est.estimate(plan, carbon_at) == ref_est.estimate(plan, carbon_at)

    vec_rate = _samples_per_second(
        _make_estimator(cloud, deployed, metrics, vectorized=True), plan,
        n_runs=5,
    )
    ref_rate = _samples_per_second(
        _make_estimator(cloud, deployed, metrics, vectorized=False), plan,
        n_runs=1,
    )
    speedup = vec_rate / ref_rate
    print(f"{'kernel':12s} {'samples/s':>12s}")
    print(f"{'scalar':12s} {ref_rate:12.0f}")
    print(f"{'vectorized':12s} {vec_rate:12.0f}")
    print(f"speedup: {speedup:.1f}x (target >= {SPEEDUP_TARGET:.0f}x)")
    assert speedup >= SPEEDUP_TARGET


@pytest.mark.throughput
def test_estimator_throughput_smoke():
    """Fast correctness-only smoke (used by CI's -k throughput pass):
    one small profile on each kernel, no timing assertions."""
    cloud, deployed, metrics = _text2speech_metrics()
    plan = DeploymentPlan.single_region(
        deployed.dag, deployed.config.home_region
    )
    for vectorized in (True, False):
        est = MonteCarloEstimator(
            deployed.dag,
            metrics,
            CarbonModel(TransmissionScenario.best_case()),
            CostModel(cloud.pricing_source),
            TransferLatencyModel(cloud.latency_source),
            np.random.default_rng(1),
            kv_region=deployed.kv_region,
            client_region=deployed.config.home_region,
            batch_size=50,
            max_samples=100,
            cov_threshold=1e-9,
            vectorized=vectorized,
        )
        assert est.estimate_profile(plan).n_samples == 100
