"""Fig. 7 — carbon normalised to us-east-1: coarse static single-region
deployments vs Caribou fine-grained deployments over region combinations.

For every benchmark x input size this reproduces the paper's bar groups:
four manual coarse deployments (us-east-1/us-west-1/us-west-2/
ca-central-1) and five Caribou runs (us-east-1+us-west-1, +us-west-2,
the three-region US set, +ca-central-1, and all four regions), each
priced under the best- and worst-case transmission scenarios.

Shape assertions (the paper's insights):
  I1 — static low-carbon deployment does not always reduce carbon;
  I2 — Caribou avoids the worst-case spikes of naive offloading;
  I3 — more/cleaner regions in the mix => more savings;
  I5 — geometric-mean savings land in a band around the paper's
       22.9 % (worst) / 66.6 % (best).
"""

import numpy as np

from conftest import (
    COARSE_REGIONS,
    INPUT_SIZES,
    SCENARIOS,
    normalized_carbon,
    print_header,
)
from repro.apps import ALL_APPS, get_app
from repro.experiments.harness import (
    FIG7_FINE_REGION_SETS,
    geometric_mean,
    run_coarse,
)

FINE_LABELS = [f"fine:{name}" for name in FIG7_FINE_REGION_SETS]
ALL_LABELS = [f"coarse:{r}" for r in COARSE_REGIONS] + FINE_LABELS


def test_fig7_carbon_savings(fig7_results, benchmark):
    print_header(
        "Fig. 7 — carbon normalised to coarse us-east-1 "
        "(rows: deployment; columns: scenario)"
    )

    norm = {}
    for app_name in sorted(ALL_APPS):
        for size in INPUT_SIZES:
            print(f"\n--- {app_name} / {size} ---")
            for label in ALL_LABELS:
                values = []
                for scenario in SCENARIOS:
                    value = normalized_carbon(
                        fig7_results, app_name, size, label, scenario
                    )
                    norm[(app_name, size, label, scenario)] = value
                    values.append(value)
                print(f"  {label:34s} best={values[0]:6.3f} "
                      f"worst={values[1]:6.3f}")

    # I5: geometric-mean reduction of the full Caribou deployment.
    for scenario, low, high in (("best-case", 0.45, 0.90),
                                ("worst-case", 0.08, 0.70)):
        values = [
            norm[(a, s, "fine:all", scenario)]
            for a in sorted(ALL_APPS) for s in INPUT_SIZES
        ]
        reduction = 1.0 - geometric_mean(values)
        print(f"\ngeometric-mean reduction (fine:all, {scenario}): "
              f"{reduction:.1%}  [paper: 66.6 % best / 22.9 % worst]")
        assert low < reduction < high, (
            f"{scenario}: geomean reduction {reduction:.1%} outside "
            f"({low:.0%}, {high:.0%})"
        )

    # Caribou with all regions is never dramatically worse than the best
    # coarse option, and usually better (fine-grained dominance).
    for app_name in sorted(ALL_APPS):
        for size in INPUT_SIZES:
            for scenario in SCENARIOS:
                best_coarse = min(
                    norm[(app_name, size, f"coarse:{r}", scenario)]
                    for r in COARSE_REGIONS
                )
                fine = norm[(app_name, size, "fine:all", scenario)]
                assert fine <= best_coarse * 1.35, (
                    f"{app_name}/{size}/{scenario}: fine {fine:.3f} vs "
                    f"best coarse {best_coarse:.3f}"
                )

    # I2: in the worst case, naive coarse offloading of the
    # transmission-heavy app spikes above 1.0 while Caribou stays at or
    # below the home baseline.
    spike = norm[("image_processing", "large", "coarse:ca-central-1",
                  "worst-case")]
    caribou = norm[("image_processing", "large", "fine:all", "worst-case")]
    print(f"\nI2 check (image_processing/large, worst): "
          f"coarse ca-central-1 = {spike:.2f}, Caribou = {caribou:.2f}")
    assert caribou < spike
    assert caribou <= 1.1

    # I3: adding ca-central-1 to the two-region mixes helps (best case).
    for app_name in ("text2speech_censoring", "video_analytics"):
        two = norm[(app_name, "small", "fine:us-east-1+us-west-1", "best-case")]
        with_ca = norm[(app_name, "small", "fine:all", "best-case")]
        assert with_ca <= two * 1.05

    # I1: at least one coarse deployment to a lower-carbon region fails
    # to beat home under the worst-case model somewhere in the matrix.
    regressions = [
        (a, s, r)
        for a in sorted(ALL_APPS)
        for s in INPUT_SIZES
        for r in ("us-west-1", "us-west-2", "ca-central-1")
        if norm[(a, s, f"coarse:{r}", "worst-case")] > 1.0
    ]
    print(f"\nI1 check: {len(regressions)} coarse deployments regress in "
          f"the worst case, e.g. {regressions[:3]}")
    assert regressions

    # Timed kernel: one coarse measurement run (the unit of Fig. 7).
    app = get_app("dna_visualization")
    benchmark.pedantic(
        lambda: run_coarse(app, "small", "us-east-1", seed=101,
                           n_invocations=5, days=0.5),
        rounds=1, iterations=1,
    )
