"""Fig. 2 — grid carbon intensity of the NA AWS regions over six months.

The paper plots hourly Electricity Maps data for us-east-1, us-west-1,
us-west-2, and ca-central-1 (July 2023 - January 2024), highlighting:
ca-central-1's consistently low hydro intensity, us-west-1's solar
diurnal swing, and us-east-1/us-west-2 sitting high.  This bench
regenerates the synthetic traces at the same six-month horizon, prints
the per-region summary, and asserts the §2.1 observations.
"""

import numpy as np

from conftest import print_header
from repro.data.carbon import CarbonIntensitySource, generate_carbon_trace

SIX_MONTHS_HOURS = 24 * 184  # July..January
REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")


def summarize(source: CarbonIntensitySource):
    rows = {}
    for region in REGIONS:
        trace = np.asarray(source.trace(region))
        by_hour = trace[: (len(trace) // 24) * 24].reshape(-1, 24).mean(axis=0)
        rows[region] = {
            "mean": trace.mean(),
            "min": trace.min(),
            "max": trace.max(),
            "diurnal_swing": (by_hour.max() - by_hour.min()) / by_hour.mean(),
            "peak_hour": int(np.argmax(by_hour)),
        }
    return rows


def test_fig2_carbon_traces(benchmark):
    source = CarbonIntensitySource(hours=SIX_MONTHS_HOURS, seed=0)
    rows = summarize(source)

    print_header("Fig. 2 — hourly grid carbon intensity, 4 NA regions, 6 months")
    print(f"{'region':14s} {'mean':>8s} {'min':>8s} {'max':>8s} "
          f"{'diurnal':>8s} {'peak@':>6s}")
    for region, row in rows.items():
        print(
            f"{region:14s} {row['mean']:8.1f} {row['min']:8.1f} "
            f"{row['max']:8.1f} {row['diurnal_swing']:7.1%} "
            f"{row['peak_hour']:5d}h"
        )

    # §2.1 observation 1: ca-central-1 (hydro) is far below everything.
    assert rows["ca-central-1"]["mean"] < 0.15 * rows["us-east-1"]["mean"]
    # §9.2 I1 calibration: us-west-1 a few percent below us-east-1,
    # us-west-2 comparable.
    assert rows["us-west-1"]["mean"] < rows["us-east-1"]["mean"]
    assert 0.85 < rows["us-west-2"]["mean"] / rows["us-east-1"]["mean"] < 1.15
    # §2.1 observation 2: the solar grid has the strongest diurnal swing,
    # peaking at night.
    assert rows["us-west-1"]["diurnal_swing"] > 2 * rows["us-east-1"]["diurnal_swing"]
    assert rows["us-west-1"]["peak_hour"] >= 20 or rows["us-west-1"]["peak_hour"] <= 4
    # §2.1 observation 3: nearby western regions still differ.
    west_gap = abs(
        rows["us-west-1"]["diurnal_swing"] - rows["us-west-2"]["diurnal_swing"]
    )
    assert west_gap > 0.05

    # Timed kernel: regenerating one region's six-month hourly trace.
    benchmark(generate_carbon_trace, "US-CAISO", SIX_MONTHS_HOURS, 0)
