"""Ablation — geospatial vs joint geospatial+temporal shifting.

The paper contrasts temporal and geospatial shifting as orthogonal
levers (§2.2) and leaves their combination to future work.  This bench
quantifies the combination on the US-only region set — the case where
geospatial shifting alone is least effective (no always-clean hydro
region) and the solar grid's diurnal swing gives delay tolerance real
value.

Setup: DNA Visualization (single-stage, trivially delay-tolerant),
regions us-east-1/us-west-1/us-west-2, invocations submitted at a dirty
hour of day.  Compared: immediate execution under the Caribou plan vs
the TemporalShifter with a 6-hour deadline.
"""

import numpy as np

from conftest import BENCH_SOLVER, print_header
from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_HOUR
from repro.core.migrator import DeploymentMigrator
from repro.core.temporal import TemporalPolicy, TemporalShifter
from repro.experiments.harness import (
    deploy_benchmark,
    solve_plan_set,
    warm_up,
)
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel

US_REGIONS = ("us-east-1", "us-west-1", "us-west-2")
#: Submit at 21:00: the solar grid is near its nightly peak.
SUBMIT_HOUR = 21
N = 15


def run(delay_tolerance_h: float, seed: int = 900) -> float:
    cloud = SimulatedCloud(seed=seed, regions=US_REGIONS)
    app = get_app("dna_visualization")
    deployed, executor, utility = deploy_benchmark(app, cloud)
    warm_up(executor, app, "small", n=8)
    scenario = TransmissionScenario.best_case()
    plan_set = solve_plan_set(deployed, executor, scenario,
                              solver_settings=BENCH_SOLVER)
    DeploymentMigrator(utility, deployed, executor).migrate(plan_set)

    shifter = TemporalShifter(executor)
    policy = (
        TemporalPolicy(max_delay_s=delay_tolerance_h * SECONDS_PER_HOUR)
        if delay_tolerance_h > 0 else None
    )
    # Submit a nightly batch on several evenings.
    base = cloud.now()
    for day in range(3):
        submit_at = (
            base
            + day * 24 * SECONDS_PER_HOUR
            + ((SUBMIT_HOUR * SECONDS_PER_HOUR - base) % (24 * SECONDS_PER_HOUR))
        )
        for i in range(N // 3):
            cloud.env.schedule_at(
                submit_at + i * 30.0,
                lambda: shifter.submit(app.make_input("small"), policy),
            )
    cloud.run_until_idle()

    accountant = CarbonAccountant(
        cloud.carbon_source, CarbonModel(scenario), CostModel(cloud.pricing_source)
    )
    rids = [
        rid for rid in cloud.ledger.request_ids(deployed.name)
        if cloud.ledger.executions_for(deployed.name, rid)[0].start_s > base
    ]
    carbons = [
        accountant.price_workflow(cloud.ledger, deployed.name, rid).carbon_g
        for rid in rids
    ]
    return float(np.mean(carbons))


def test_ablation_temporal_shifting(benchmark):
    print_header("Ablation — geo-only vs geo+temporal (US regions, "
                 "nightly batch)")
    geo_only = run(0.0)
    joint_3h = run(3.0)
    joint_8h = run(8.0)
    print(f"{'strategy':26s} {'mg/invocation':>14s} {'vs geo-only':>12s}")
    for name, value in (("geo-only (immediate)", geo_only),
                        ("geo + 3 h tolerance", joint_3h),
                        ("geo + 8 h tolerance", joint_8h)):
        print(f"{name:26s} {value * 1000:14.4f} "
              f"{value / geo_only - 1:11.1%}")

    # Waiting out the solar grid's night peak saves carbon, and more
    # tolerance saves at least as much.
    assert joint_8h < geo_only
    assert joint_8h <= joint_3h * 1.05

    benchmark.pedantic(lambda: run(3.0, seed=901), rounds=1, iterations=1)
