"""Ablation — solver quality/cost trade (DESIGN.md §5).

§5.1 motivates HBSS against two alternatives: the coarse single-region
solver (O(|R|) but "globally suboptimal") and exhaustive search
("intractable").  On a DAG small enough to enumerate, this bench
measures all three on the same evaluator: solution quality (carbon of
the chosen plan vs the true optimum) and plans evaluated.
"""

import numpy as np
import pytest

from conftest import print_header
from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.core.solver import (
    CoarseSolver,
    ExhaustiveSolver,
    HBSSSolver,
    PlanEvaluator,
    SolverSettings,
)
from repro.experiments.harness import deploy_benchmark, warm_up
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.latency import TransferLatencyModel
from repro.metrics.manager import MetricsManager

SETTINGS = SolverSettings(batch_size=40, max_samples=120, cov_threshold=0.12)


@pytest.fixture(scope="module")
def evaluator():
    cloud = SimulatedCloud(seed=800)
    app = get_app("text2speech_censoring")  # 5 nodes, 4^5 = 1024 plans
    deployed, executor, _ = deploy_benchmark(app, cloud)
    warm_up(executor, app, "small", n=10)
    mm = MetricsManager(deployed.dag, deployed.config, cloud.ledger,
                        cloud.carbon_source)
    mm.collect(cloud.now())
    return PlanEvaluator(
        dag=deployed.dag, config=deployed.config, data=mm,
        regions=cloud.regions,
        intensity_fn=lambda r, h: cloud.carbon_source.intensity_at_hour(r, h),
        carbon_model=CarbonModel(TransmissionScenario.best_case()),
        cost_model=CostModel(cloud.pricing_source),
        latency_model=TransferLatencyModel(cloud.latency_source),
        rng=np.random.default_rng(800),
        settings=SETTINGS,
    )


def test_ablation_solver_quality(evaluator, benchmark):
    print_header("Ablation — HBSS vs coarse vs exhaustive (Text2Speech)")

    optimal_plan, optimal_est = ExhaustiveSolver(
        evaluator, max_plans=5000
    ).solve_hour(0)
    exhaustive_evals = evaluator.plans_profiled

    hbss = HBSSSolver(evaluator, np.random.default_rng(801))
    hbss_result = hbss.solve_hour(0)
    hbss_metric = evaluator.estimate(hbss_result.best_plan, 0).mean_carbon_g

    coarse_plan, coarse_est = CoarseSolver(evaluator).solve_hour(0)

    print(f"{'solver':12s} {'carbon (mg)':>12s} {'vs optimal':>11s} "
          f"{'plans evaluated':>16s}")
    rows = (
        ("exhaustive", optimal_est.mean_carbon_g, exhaustive_evals),
        ("hbss", hbss_metric, hbss_result.iterations),
        ("coarse", coarse_est.mean_carbon_g, 4),
    )
    for name, carbon, evals in rows:
        print(f"{name:12s} {carbon * 1000:12.4f} "
              f"{carbon / optimal_est.mean_carbon_g - 1:10.1%} "
              f"{evals:16d}")

    # HBSS lands within a few percent of the optimum with a fraction of
    # the evaluations.
    assert hbss_metric <= optimal_est.mean_carbon_g * 1.08
    assert hbss_result.iterations < exhaustive_evals

    # The coarse solver is feasible but cannot satisfy the upload
    # compliance constraint AND reach the clean region for other nodes,
    # so it is at least as carbon-expensive as the fine-grained optimum.
    assert coarse_est.mean_carbon_g >= optimal_est.mean_carbon_g * 0.999
    # And the compliance constraint really binds: the optimal plan is
    # NOT single region.
    assert not optimal_plan.is_single_region()

    benchmark.pedantic(
        lambda: HBSSSolver(evaluator, np.random.default_rng(802)).solve_hour(1),
        rounds=1, iterations=1,
    )
