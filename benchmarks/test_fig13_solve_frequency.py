"""Fig. 13 — sensitivity to the plan-generation frequency (§9.7).

The dynamic trigger is disabled and the solver runs on a fixed schedule
of 1..7 solves per week (Text2Speech Censoring, small input, scaled
Azure-style traffic).

(a) Total carbon per invocation, split into workflow execution carbon
    and Caribou overhead (DP generation compute — priced via the §5.2
    cost model the token bucket uses — plus migration image copies).
    Shape: overhead grows with frequency but stays small relative to
    the workflow itself, and more frequent solving does not
    dramatically reduce workflow carbon (the paper's "no significant
    framework overhead ... but also no significant decrease").

(b) Forecast quality vs solve frequency: solving k times per week means
    each plan relies on a 7/k-day-old Holt-Winters forecast; MAPE over
    the applicable window shrinks as solves become more frequent, and
    sub-linearly (Fig. 13b: "forecast quality does not worsen linearly
    with increasing forecast window").
"""

from typing import Dict

import numpy as np
import pytest

from conftest import BENCH_SOLVER, print_header
from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.common.clock import SECONDS_PER_DAY
from repro.core.manager import DeploymentManager
from repro.data.carbon import generate_carbon_trace
from repro.data.traces import azure_like_trace
from repro.experiments.harness import deploy_benchmark
from repro.metrics.accounting import CarbonAccountant
from repro.metrics.carbon import CarbonModel, TransmissionScenario
from repro.metrics.cost import CostModel
from repro.metrics.forecast import HoltWintersForecaster, mape

FREQUENCIES = (1, 2, 3, 5, 7)
DAYS = 6.0
#: Scaled from the paper's ~1.6 K daily invocations (5th-pct Azure DAG);
#: framework overhead amortises proportionally (§9.7), so the scaled
#: rate must stay high enough that the one-time migration image copies
#: do not dominate the per-invocation overhead.
DAILY_INVOCATIONS = 400
APP = "text2speech_censoring"


def run_with_frequency(solves_per_week: int, seed: int = 600) -> Dict[str, float]:
    cloud = SimulatedCloud(seed=seed)
    app = get_app(APP)
    deployed, executor, utility = deploy_benchmark(app, cloud)
    scenario = TransmissionScenario.worst_case()
    dm = DeploymentManager(
        deployed, executor, utility, scenario=scenario,
        solver_settings=BENCH_SOLVER, use_token_bucket=False,
        use_forecast=False,
    )
    trace = azure_like_trace(days=DAYS, mean_daily_invocations=DAILY_INVOCATIONS,
                             seed=seed)
    rids = []
    for t in trace:
        cloud.env.schedule(
            t, lambda: rids.append(executor.invoke(app.make_input("small")))
        )
    interval = 7.0 * SECONDS_PER_DAY / solves_per_week
    solve_times = [t for t in np.arange(SECONDS_PER_DAY / 4, DAYS * SECONDS_PER_DAY,
                                        interval)]
    for t in solve_times:
        cloud.env.schedule_at(t, lambda: dm.solve_now(granularity_hours=24))
    cloud.run_until_idle()

    accountant = CarbonAccountant(
        cloud.carbon_source, CarbonModel(scenario), CostModel(cloud.pricing_source)
    )
    workflow_fp = accountant.price_workflow(cloud.ledger, deployed.name)
    # Framework overhead: the §5.2 solve-cost model per generation plus
    # the crane image copies the migrator performed.
    framework_i = cloud.carbon_source.average("us-east-1")
    solve_overhead = len(dm.plan_history) * dm.bucket.solve_cost_g(
        framework_i, 24
    )
    image_records = [
        r for r in cloud.ledger.transmissions if r.kind == "image"
    ]
    image_overhead = sum(
        accountant.transmission_carbon_g(r) for r in image_records
    )
    n = max(1, len(rids))
    return {
        "workflow_g": workflow_fp.carbon_g / n,
        "overhead_g": (solve_overhead + image_overhead) / n,
        "n_invocations": len(rids),
        "n_solves": len(dm.plan_history),
    }


@pytest.fixture(scope="module")
def frequency_results():
    return {f: run_with_frequency(f) for f in FREQUENCIES}


def test_fig13a_overhead_vs_frequency(frequency_results, benchmark):
    print_header("Fig. 13a — carbon per invocation vs weekly solve frequency")
    print(f"{'freq/wk':>7s} {'solves':>7s} {'workflow mg':>12s} "
          f"{'overhead mg':>12s} {'total mg':>10s} {'ovh share':>9s}")
    for f in FREQUENCIES:
        r = frequency_results[f]
        total = r["workflow_g"] + r["overhead_g"]
        print(f"{f:7d} {r['n_solves']:7d} {r['workflow_g'] * 1000:12.4f} "
              f"{r['overhead_g'] * 1000:12.4f} {total * 1000:10.4f} "
              f"{r['overhead_g'] / total:8.1%}")

    overheads = [frequency_results[f]["overhead_g"] for f in FREQUENCIES]
    workflows = [frequency_results[f]["workflow_g"] for f in FREQUENCIES]
    totals = [w + o for w, o in zip(workflows, overheads)]
    # Overhead grows with solve frequency...
    assert overheads[-1] > overheads[0]
    # ...but stays below the workflow's own carbon (at the paper's 1.6 K
    # daily invocations the share would be ~4x smaller still — overhead
    # amortises per invocation, §9.7).
    for f in FREQUENCIES:
        r = frequency_results[f]
        assert r["overhead_g"] < r["workflow_g"], f
    # The paper's 13a conclusion, both directions: frequent updates do
    # not blow the budget (total at 7/week is no worse than at 1/week —
    # here it is strictly better, because the weekly plan goes stale and
    # falls back home mid-week)...
    assert totals[-1] <= totals[0]
    # ...and they do not dramatically reduce workflow carbon either:
    # the steadily re-solving frequencies sit within a narrow band.
    resolving = workflows[1:]
    assert max(resolving) < 1.35 * min(resolving)

    benchmark.pedantic(
        lambda: run_with_frequency(1, seed=601), rounds=1, iterations=1,
    )


def test_fig13b_forecast_quality_vs_frequency(benchmark):
    print_header("Fig. 13b — forecast MAPE vs solve frequency")
    horizon_weeks = 3
    traces = {
        zone: generate_carbon_trace(zone, 24 * 7 * horizon_weeks, seed=7)
        for zone in ("US-PJM", "US-CAISO", "US-BPA", "CA-QC")
    }

    def mean_mape(solves_per_week: int) -> float:
        window_hours = int(round(24 * 7 / solves_per_week))
        errors = []
        for zone, trace in traces.items():
            # Fit at each solve point in week 2..3, score the window the
            # plan would rely on.
            fit_points = range(24 * 7, len(trace) - window_hours, window_hours)
            for start in fit_points:
                forecaster = HoltWintersForecaster().fit(
                    trace[start - 24 * 7 : start]
                )
                pred = forecaster.forecast(window_hours)
                errors.append(mape(trace[start : start + window_hours], pred))
        return float(np.mean(errors))

    results = {f: mean_mape(f) for f in FREQUENCIES}
    print(f"{'freq/wk':>7s} {'window (h)':>10s} {'MAPE':>7s}")
    for f, err in results.items():
        print(f"{f:7d} {round(24 * 7 / f):10d} {err:6.1%}")

    # More frequent solves (shorter forecast windows) -> better forecasts.
    assert results[7] < results[1]
    # Sub-linear degradation: a 7x longer window costs far less than 7x
    # the error (Fig. 13b's point).
    assert results[1] < 4 * results[7]
    # All within a usable band for plan ranking.
    assert all(err < 0.5 for err in results.values())

    benchmark(lambda: mean_mape(7))
