"""Ablations — forecast source and plan granularity (DESIGN.md §5).

1. *ACI-now vs Holt-Winters*: ranking tomorrow's hourly plans by the
   current hour's intensity (naive) vs by the Holt-Winters forecast.
   Metric: mean absolute error of the assumed intensity against the
   actual intensity at each future hour — the quantity plan ranking
   actually consumes.

2. *24 hourly plans vs one daily plan* (§5.2's degraded granularity):
   on the solar-heavy grid, a single daily assignment cannot track the
   diurnal swing, so the achievable carbon (oracle per-hour best region
   vs best fixed region) differs; hourly granularity captures most of
   the gap.
"""

import numpy as np

from conftest import print_header
from repro.data.carbon import CarbonIntensitySource, generate_carbon_trace
from repro.metrics.forecast import HoltWintersForecaster

REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")


def test_ablation_forecast_source(benchmark):
    print_header("Ablation — ACI-now vs Holt-Winters for next-day planning")
    horizon = 24
    errors = {"aci-now": [], "holt-winters": []}
    for zone in ("US-PJM", "US-CAISO", "US-BPA", "CA-QC"):
        trace = generate_carbon_trace(zone, 24 * 8, seed=12)
        history, future = trace[: 24 * 7], trace[24 * 7 :]
        hw = HoltWintersForecaster().fit(history).forecast(horizon)
        now_value = history[-1]
        errors["aci-now"].append(np.abs(future - now_value).mean())
        errors["holt-winters"].append(np.abs(future - hw).mean())

    for name, errs in errors.items():
        print(f"{name:14s} mean abs error {np.mean(errs):8.2f} gCO2eq/kWh")

    # The forecast beats freezing the current intensity, which is the
    # §7.2 motivation for forecasting at all.
    assert np.mean(errors["holt-winters"]) < np.mean(errors["aci-now"])

    benchmark(
        lambda: HoltWintersForecaster()
        .fit(generate_carbon_trace("US-CAISO", 24 * 7, seed=12))
        .forecast(24)
    )


def test_ablation_plan_granularity(benchmark):
    print_header("Ablation — hourly (24) vs daily (1) plan granularity")
    source = CarbonIntensitySource(hours=24 * 7, seed=12)
    traces = {r: np.asarray(source.trace(r)) for r in REGIONS}

    # Oracle comparison on pure grid intensity (the execution-carbon
    # driver): per-hour best region vs single best fixed region.
    stacked = np.stack([traces[r] for r in REGIONS])
    hourly_best = stacked.min(axis=0).mean()
    daily_best = stacked.mean(axis=1).min()

    # And with the clean hydro region excluded (the interesting case:
    # when no region dominates, tracking the diurnal swing matters).
    no_ca = np.stack([traces[r] for r in REGIONS if r != "ca-central-1"])
    hourly_no_ca = no_ca.min(axis=0).mean()
    daily_no_ca = no_ca.mean(axis=1).min()

    print(f"{'setting':28s} {'hourly':>10s} {'daily':>10s} {'gap':>7s}")
    print(f"{'all four regions':28s} {hourly_best:10.1f} {daily_best:10.1f} "
          f"{1 - hourly_best / daily_best:6.1%}")
    print(f"{'without ca-central-1':28s} {hourly_no_ca:10.1f} "
          f"{daily_no_ca:10.1f} {1 - hourly_no_ca / daily_no_ca:6.1%}")

    # Hourly tracking can only help.
    assert hourly_best <= daily_best
    assert hourly_no_ca <= daily_no_ca
    # Without the always-clean region, the diurnal swing makes hourly
    # granularity worth a measurable margin (>3 %).
    assert 1 - hourly_no_ca / daily_no_ca > 0.03

    benchmark(lambda: np.stack([traces[r] for r in REGIONS]).min(axis=0).mean())
