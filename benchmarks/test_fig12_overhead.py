"""Fig. 12 — orchestration overhead: Step Functions vs SNS vs Caribou.

Runs every benchmark x input size through the three orchestrators in
the home region with warm containers and compares mean workflow
execution time (§9.1's service-time definition).

Shape (§9.6): AWS Step Functions is fastest (centralised transitions);
Caribou adds <~1 % (geometric mean) over plain SNS chaining; Caribou's
overhead relative to Step Functions shrinks from small to large inputs
(fixed overheads amortise over longer executions).
"""

from typing import Dict, Tuple

import numpy as np
import pytest

from conftest import print_header
from repro.apps import ALL_APPS, get_app
from repro.cloud.provider import SimulatedCloud
from repro.core.baselines import SnsOrchestrator, StepFunctionsOrchestrator
from repro.experiments.harness import deploy_benchmark, geometric_mean

N_INVOCATIONS = 60
WARM_SKIP = 5
INTERVAL_S = 300.0  # below the container keep-alive


def measure(app_name: str, size: str) -> Dict[str, float]:
    cloud = SimulatedCloud(seed=500)
    app = get_app(app_name)
    deployed, executor, _ = deploy_benchmark(app, cloud)
    sns = SnsOrchestrator(deployed)
    sns.setup()
    sf = StepFunctionsOrchestrator(deployed)

    def mean_service_time(invoke) -> float:
        rids = []
        for i in range(N_INVOCATIONS):
            cloud.env.schedule(
                i * INTERVAL_S, lambda: rids.append(invoke(app.make_input(size)))
            )
        cloud.run_until_idle()
        times = [
            cloud.ledger.service_time(deployed.name, rid)
            for rid in rids[WARM_SKIP:]
        ]
        return float(np.mean(times))

    return {
        "stepfunctions": mean_service_time(sf.invoke),
        "sns": mean_service_time(sns.invoke),
        "caribou": mean_service_time(
            lambda p: executor.invoke(p, force_home=True)
        ),
    }


@pytest.fixture(scope="module")
def overhead_results() -> Dict[Tuple[str, str], Dict[str, float]]:
    return {
        (app_name, size): measure(app_name, size)
        for app_name in sorted(ALL_APPS)
        for size in ("small", "large")
    }


def test_fig12_overhead(overhead_results, benchmark):
    print_header("Fig. 12 — workflow execution time by orchestrator (s)")
    print(f"{'app':24s} {'size':6s} {'StepFn':>8s} {'SNS':>8s} "
          f"{'Caribou':>8s} {'C/SNS':>7s} {'C/SF':>7s}")
    for (app_name, size), times in overhead_results.items():
        print(
            f"{app_name:24s} {size:6s} {times['stepfunctions']:8.3f} "
            f"{times['sns']:8.3f} {times['caribou']:8.3f} "
            f"{times['caribou'] / times['sns'] - 1:6.1%} "
            f"{times['caribou'] / times['stepfunctions'] - 1:6.1%}"
        )

    for size in ("small", "large"):
        sf_vs_sns = geometric_mean([
            t["sns"] / t["stepfunctions"]
            for (a, s), t in overhead_results.items() if s == size
        ]) - 1.0
        caribou_vs_sns = geometric_mean([
            t["caribou"] / t["sns"]
            for (a, s), t in overhead_results.items() if s == size
        ]) - 1.0
        caribou_vs_sf = geometric_mean([
            t["caribou"] / t["stepfunctions"]
            for (a, s), t in overhead_results.items() if s == size
        ]) - 1.0
        print(f"\n[{size}] geomean: SNS over SF {sf_vs_sns:+.1%} "
              f"[paper: +12.8 % small / +2.17 % large], "
              f"Caribou over SNS {caribou_vs_sns:+.1%} [paper: <1 %], "
              f"Caribou over SF {caribou_vs_sf:+.1%} "
              f"[paper: 5.72 % small / 2.71 % large]")

        # Step Functions is fastest; SNS chaining pays publish+delivery.
        # For large inputs the relative gap is small (paper: 2.17 %), so
        # allow the duration-noise floor there.
        floor = 0.0 if size == "small" else -0.01
        assert sf_vs_sns > floor, f"{size}: SNS over SF {sf_vs_sns:+.1%}"
        # Caribou's additional overhead over SNS is small.
        assert caribou_vs_sns < 0.06, f"{size}: {caribou_vs_sns:+.1%}"
        assert caribou_vs_sf > floor, f"{size}: C over SF {caribou_vs_sf:+.1%}"

    # Relative Caribou-over-SF overhead shrinks with larger inputs.
    small_overhead = geometric_mean([
        t["caribou"] / t["stepfunctions"]
        for (a, s), t in overhead_results.items() if s == "small"
    ])
    large_overhead = geometric_mean([
        t["caribou"] / t["stepfunctions"]
        for (a, s), t in overhead_results.items() if s == "large"
    ])
    assert large_overhead <= small_overhead * 1.02

    # Timed kernel: one warm Caribou invocation end to end.
    cloud = SimulatedCloud(seed=501)
    app = get_app("dna_visualization")
    deployed, executor, _ = deploy_benchmark(app, cloud)

    def one_invocation():
        executor.invoke(app.make_input("small"), force_home=True)
        cloud.run_until_idle()

    benchmark.pedantic(one_invocation, rounds=10, iterations=1)
