"""Table 1 — benchmark workflow structures, features, and input sizes.

Regenerates the table from the registered apps: DAG structure is
extracted by the *actual static analyser* from the handler source (not
from declared metadata), then checked against the paper's sync /
conditional / input-size columns.
"""


from conftest import print_header
from repro.apps import ALL_APPS, get_app
from repro.common.units import KB, MB
from repro.core.analysis import analyze_workflow


def fmt_size(n: float) -> str:
    if n >= MB:
        return f"{n / MB:.1f}MB"
    return f"{n / KB:.0f}KB"


def test_table1_structures(benchmark):
    print_header("Table 1 — benchmark workflows")
    print(f"{'benchmark':24s} {'stages':>6s} {'edges':>6s} {'sync':>5s} "
          f"{'cond':>5s} {'inputs':>18s}")

    rows = {}
    for name in sorted(ALL_APPS):
        app = get_app(name)
        dag = analyze_workflow(app.build_workflow())
        rows[name] = dag
        inputs = (
            f"{fmt_size(app.input_sizes['small'])} / "
            f"{fmt_size(app.input_sizes['large'])}"
        )
        print(
            f"{name:24s} {len(dag):6d} {len(dag.edges):6d} "
            f"{'yes' if dag.sync_nodes else 'no':>5s} "
            f"{'yes' if dag.has_conditional_edges else 'no':>5s} "
            f"{inputs:>18s}"
        )

    # The paper's structural facts.
    assert len(rows["dna_visualization"]) == 1
    assert not rows["dna_visualization"].sync_nodes
    assert len(rows["rag_ingestion"]) == 2
    assert rows["image_processing"].sync_nodes
    assert rows["text2speech_censoring"].sync_nodes
    assert rows["text2speech_censoring"].has_conditional_edges
    assert rows["video_analytics"].sync_nodes
    assert not rows["video_analytics"].has_conditional_edges

    # Timed kernel: static analysis of the most complex app.
    app = get_app("image_processing")
    benchmark(lambda: analyze_workflow(app.build_workflow()))
