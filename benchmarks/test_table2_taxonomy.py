"""Table 2 — capability taxonomy of serverless workflow frameworks.

The paper positions Caribou as the only framework combining
carbon/latency/cost objectives, fine deployment granularity, dynamic
migration, geospatial awareness, multi-stage workflows, control flow,
synchronisation nodes, and transmission-overhead modelling.  This bench
prints the taxonomy and *verifies the Caribou row against this
implementation* — each capability is checked by exercising the feature,
not by reading a constant.
"""

import numpy as np

from conftest import print_header
from repro.apps import get_app
from repro.cloud.provider import SimulatedCloud
from repro.experiments.harness import deploy_benchmark

ROWS = (
    ("AWS Step Functions", "-", "coarse", False, False, True, True, True, False),
    ("GCP Workflows", "-", "coarse", False, False, True, True, True, False),
    ("Azure Logic Apps", "-", "coarse", False, False, True, True, True, False),
    ("Serverless Multicloud", "latency+cost", "fine", False, False, True, False, False, False),
    ("BPMN4FO", "-", "coarse", False, False, False, True, False, False),
    ("xAFCL", "latency+cost", "fine", False, True, True, True, False, False),
    ("OpenTOSCA", "-", "coarse", False, False, True, True, True, False),
    ("Carbon Aware GSLB", "carbon", "coarse", False, True, False, False, False, False),
    ("GreenCourier", "carbon", "coarse", False, True, False, False, False, False),
    ("Caribou (this repo)", "carbon+latency+cost", "fine",
     True, True, True, True, True, True),
)
HEADERS = ("framework", "objectives", "granularity", "dyn-migr", "geo",
           "multi-stage", "ctrl-flow", "sync", "tx-overhead")


def test_table2_taxonomy(benchmark):
    print_header("Table 2 — framework capability taxonomy")
    print(f"{HEADERS[0]:22s} {HEADERS[1]:20s} {HEADERS[2]:11s} " +
          " ".join(f"{h:>11s}" for h in HEADERS[3:]))
    for row in ROWS:
        flags = " ".join(
            f"{'yes' if v else 'no':>11s}" for v in row[3:]
        )
        print(f"{row[0]:22s} {row[1]:20s} {row[2]:11s} {flags}")

    # Verify the Caribou row against the implementation.
    cloud = SimulatedCloud(seed=700)
    app = get_app("text2speech_censoring")
    deployed, executor, utility = deploy_benchmark(app, cloud)

    # Multi-stage + control flow + sync nodes: the DAG has them and a
    # run exercises them.
    dag = deployed.dag
    assert len(dag) > 1                      # multi-stage
    assert dag.has_conditional_edges         # control flow
    assert dag.sync_nodes                    # synchronisation nodes
    rid = executor.invoke(app.make_input("small"), force_home=True)
    cloud.run_until_idle()
    assert len(cloud.ledger.executions_for(deployed.name, rid)) == len(dag)

    # Dynamic migration: the migrator can materialise a new plan set.
    from repro.core.migrator import DeploymentMigrator
    from repro.model.plan import DeploymentPlan, HourlyPlanSet

    migrator = DeploymentMigrator(utility, deployed, executor)
    assignments = {n: "us-east-1" for n in dag.node_names}
    assignments["profanity_detection"] = "us-west-2"
    report = migrator.migrate(
        HourlyPlanSet.daily(DeploymentPlan(assignments))
    )
    assert report.activated                  # dynamic migration

    # Geospatial + fine granularity: the activated plan spans regions
    # with per-node assignments.
    active = executor.fetch_active_plan()
    assert len(set(active.assignments.values())) == 2  # fine + geospatial

    # Transmission overhead: the solver's objective includes modelled
    # transmission carbon (non-zero for a cross-region plan).
    from repro.core.solver import PlanEvaluator, SolverSettings
    from repro.metrics.carbon import CarbonModel, TransmissionScenario
    from repro.metrics.cost import CostModel
    from repro.metrics.latency import TransferLatencyModel
    from repro.metrics.manager import MetricsManager

    mm = MetricsManager(dag, deployed.config, cloud.ledger, cloud.carbon_source)
    mm.collect(cloud.now())
    evaluator = PlanEvaluator(
        dag=dag, config=deployed.config, data=mm, regions=cloud.regions,
        intensity_fn=lambda r, h: cloud.carbon_source.intensity_at_hour(r, h),
        carbon_model=CarbonModel(TransmissionScenario.best_case()),
        cost_model=CostModel(cloud.pricing_source),
        latency_model=TransferLatencyModel(cloud.latency_source),
        rng=np.random.default_rng(0),
        settings=SolverSettings(batch_size=30, max_samples=60,
                                cov_threshold=0.2),
    )
    estimate = evaluator.estimate(DeploymentPlan(assignments), hour=0)
    assert estimate.mean_trans_carbon_g > 0  # transmission modelled

    benchmark(lambda: evaluator.estimate(DeploymentPlan(assignments), hour=1))
