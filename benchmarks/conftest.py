"""Shared infrastructure for the figure/table reproduction benches.

Every bench prints the rows/series the paper reports (shape-level
reproduction, not absolute numbers — see EXPERIMENTS.md) and asserts the
qualitative findings.  Heavy experiments run once per session and are
cached here so that e.g. the Fig. 8 bench can reuse the Fig. 7 runs.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Tuple

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.apps import ALL_APPS, get_app
from repro.core.solver import SolverSettings
from repro.experiments.harness import (
    FIG7_FINE_REGION_SETS,
    RunOutcome,
    run_caribou,
    run_coarse,
)

#: Solver fidelity for benches: profiles are cached per plan, so this is
#: still hundreds of simulations per candidate.  Tuned for the single-
#: core CI budget; the ablation benches quantify the quality impact.
BENCH_SOLVER = SolverSettings(batch_size=40, max_samples=120,
                              cov_threshold=0.12, alpha_per_node_region=3)

COARSE_REGIONS = ("us-east-1", "us-west-1", "us-west-2", "ca-central-1")
INPUT_SIZES = ("small", "large")
SCENARIOS = ("best-case", "worst-case")


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


@pytest.fixture(scope="session")
def fig7_results() -> Dict[Tuple[str, str, str], Dict[str, RunOutcome]]:
    """All Fig. 7 runs: (app, input_size, label) -> scenario -> outcome.

    Labels: ``coarse:<region>`` for the four manual static deployments
    and ``fine:<set>`` for Caribou over each region combination.  Coarse
    deployments do not depend on the transmission scenario, so one run
    is priced under both; Caribou's *solver* is scenario-aware (it is
    what keeps transmission-heavy apps home in the worst case, §9.2 I2),
    so the fine runs are solved and measured per scenario.
    """
    from repro.metrics.carbon import TransmissionScenario

    scenario_objs = {
        "best-case": TransmissionScenario.best_case(),
        "worst-case": TransmissionScenario.worst_case(),
    }
    results: Dict[Tuple[str, str, str], Dict[str, RunOutcome]] = {}
    for app_name in sorted(ALL_APPS):
        app = get_app(app_name)
        for size in INPUT_SIZES:
            for region in COARSE_REGIONS:
                out = run_coarse(
                    app, size, region, seed=100, n_invocations=25, days=6.0,
                )
                results[(app_name, size, out.label)] = {
                    name: out for name in SCENARIOS
                }
            for set_name, regions in FIG7_FINE_REGION_SETS.items():
                per_scenario = {}
                for name, scenario in scenario_objs.items():
                    per_scenario[name] = run_caribou(
                        app, size, regions, seed=100, n_invocations=20,
                        warmup=10, days=5.5, solver_settings=BENCH_SOLVER,
                        scenario_for_solver=scenario, scenarios=[scenario],
                        label=f"fine:{set_name}",
                    )
                results[(app_name, size, f"fine:{set_name}")] = per_scenario
    return results


def normalized_carbon(
    results: Dict[Tuple[str, str, str], Dict[str, RunOutcome]],
    app: str,
    size: str,
    label: str,
    scenario: str,
) -> float:
    """Carbon normalised to the us-east-1 coarse deployment (Fig. 7)."""
    base = results[(app, size, "coarse:us-east-1")][scenario].carbon(scenario)
    return results[(app, size, label)][scenario].carbon(scenario) / base
